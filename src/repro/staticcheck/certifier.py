"""Static conflict-freedom certification of scheduled plans.

The paper's central claim is that every one of the scheduled
permutation's 32 rounds is *regular*: shared rounds hit ``w`` distinct
banks per warp (conflict-free on the DMM), global rounds touch a single
address group per warp (fully coalesced on the UMM).  The simulator
demonstrates this dynamically; this module *proves* it statically.

:func:`certify_plan` derives the 32 address streams symbolically
(:mod:`repro.staticcheck.access`) and analyses each round per warp:
the multiset of banks ``addr mod w`` for shared rounds, the set of
address groups ``addr div w`` for global rounds.  The result is a
:class:`Certificate` — per-round verdicts plus, on failure, a
:class:`Counterexample` naming the kernel, round, block, warp, bank and
colliding lanes.

The analysis is deliberately implemented independently of
:mod:`repro.machine.cost_model` (scatter-add counting here vs. bincount
there, and addresses derived from plan arrays rather than captured from
execution), so the differential tests compare two independent
derivations of the same quantities.

Certificates serialise to JSON and are embedded into plan files by
:func:`repro.core.io.save_plan`; a certificate binds itself to its plan
via the plan's payload checksum (``plan_sha``), so a certificate can
never vouch for a file it was not issued for.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import CertificateError, StaticCheckError
from repro.staticcheck.access import StaticRound, plan_rounds, program_rounds

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.scheduled import ScheduledPermutation
    from repro.ir.program import KernelProgram

#: Schema version of serialised certificates.
CERTIFICATE_VERSION = 1


def _warp_matrix(addresses: np.ndarray, width: int) -> np.ndarray:
    """View a flat address stream as ``(num_warps, width)``.

    Every plan round has a thread count divisible by the width (``n``
    is a multiple of ``w`` and block sizes are multiples of ``w``), so
    unlike the simulator's padding path this is a strict reshape.
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    if width < 1:
        raise StaticCheckError(f"width must be >= 1, got {width}")
    if addresses.ndim != 1 or addresses.shape[0] % width != 0:
        raise StaticCheckError(
            f"address stream of {addresses.shape} threads does not "
            f"divide into warps of {width}"
        )
    return addresses.reshape(-1, width)


def shared_bank_multiplicities(
    addresses: np.ndarray, width: int
) -> np.ndarray:
    """Per-warp maximum bank multiplicity of a shared (DMM) round.

    Warp ``g``'s requests occupy ``k`` pipeline stages where ``k`` is
    the largest number of its lanes whose addresses share one bank
    (``addr mod w``).  ``1`` everywhere means conflict-free.
    """
    warps = _warp_matrix(addresses, width)
    if warps.size == 0:
        return np.zeros(0, dtype=np.int64)
    banks = warps % width
    counts = np.zeros((warps.shape[0], width), dtype=np.int64)
    rows = np.repeat(
        np.arange(warps.shape[0], dtype=np.int64), width
    )
    np.add.at(counts, (rows, banks.reshape(-1)), 1)
    return counts.max(axis=1)


def global_group_counts(addresses: np.ndarray, width: int) -> np.ndarray:
    """Per-warp distinct address-group count of a global (UMM) round.

    Warp ``g``'s requests occupy one stage per distinct group
    ``addr div w`` among its lanes.  ``1`` everywhere means fully
    coalesced.
    """
    warps = _warp_matrix(addresses, width)
    if warps.size == 0:
        return np.zeros(0, dtype=np.int64)
    groups = np.sort(warps // width, axis=1)
    distinct = np.count_nonzero(np.diff(groups, axis=1), axis=1) + 1
    return distinct.astype(np.int64)


@dataclass(frozen=True)
class RoundVerdict:
    """The certified cost profile of one static round.

    ``stages`` is the round's total pipeline-stage count on a single
    memory (sum over warps); ``max_per_warp`` is the worst warp's bank
    multiplicity (shared) or distinct-group count (global).  The round
    is regular — conflict-free or coalesced — iff ``ok``.
    """

    kernel: str
    index: int
    space: str
    kind: str
    array: str
    num_warps: int
    stages: int
    max_per_warp: int

    @property
    def ok(self) -> bool:
        return self.max_per_warp <= 1

    @property
    def classification(self) -> str:
        """The paper's Section III terminology for this round."""
        if not self.ok:
            return "casual"
        return "coalesced" if self.space == "global" else "conflict-free"


@dataclass(frozen=True)
class Counterexample:
    """A pinpointed violation of conflict-freedom / coalescing.

    For shared rounds, ``lanes`` are the warp lanes whose addresses
    collide in ``bank``; for global rounds, ``groups`` are the distinct
    address groups the warp touches (coalescing demands exactly one).
    ``block`` is the thread block owning the warp (shared rounds only).
    """

    kernel: str
    round_index: int
    space: str
    kind: str
    array: str
    warp: int
    lanes: tuple[int, ...]
    addresses: tuple[int, ...]
    block: int | None = None
    bank: int | None = None
    groups: tuple[int, ...] = ()

    def describe(self) -> str:
        where = f"{self.kernel} round {self.round_index} " \
                f"({self.space} {self.kind} {self.array})"
        if self.space == "shared":
            block = "" if self.block is None else f"block {self.block}, "
            lanes = ", ".join(str(lane) for lane in self.lanes)
            addrs = ", ".join(str(a) for a in self.addresses)
            return (
                f"{where}: {block}warp {self.warp}, lanes {lanes} all "
                f"hit bank {self.bank} (addresses {addrs})"
            )
        groups = ", ".join(str(g) for g in self.groups)
        return (
            f"{where}: warp {self.warp} touches {len(self.groups)} "
            f"address groups ({groups}) — coalescing requires one"
        )


def _shared_counterexample(
    rnd: StaticRound, width: int, per_warp: np.ndarray
) -> Counterexample:
    warp = int(np.argmax(per_warp > 1))
    warps = _warp_matrix(rnd.addresses, width)
    row = warps[warp]
    banks = row % width
    counts = np.bincount(banks, minlength=width)
    bank = int(np.argmax(counts))
    lanes = np.nonzero(banks == bank)[0]
    block = None
    if rnd.block_size is not None:
        block = warp // (rnd.block_size // width)
    return Counterexample(
        kernel=rnd.kernel,
        round_index=rnd.index,
        space=rnd.space,
        kind=rnd.kind,
        array=rnd.array,
        warp=warp,
        block=block,
        bank=bank,
        lanes=tuple(int(lane) for lane in lanes),
        addresses=tuple(int(row[lane]) for lane in lanes),
    )


def _global_counterexample(
    rnd: StaticRound, width: int, per_warp: np.ndarray
) -> Counterexample:
    warp = int(np.argmax(per_warp > 1))
    row = _warp_matrix(rnd.addresses, width)[warp]
    groups = np.unique(row // width)
    return Counterexample(
        kernel=rnd.kernel,
        round_index=rnd.index,
        space=rnd.space,
        kind=rnd.kind,
        array=rnd.array,
        warp=warp,
        lanes=tuple(range(row.shape[0])),
        addresses=tuple(int(a) for a in row),
        groups=tuple(int(g) for g in groups),
    )


def analyze_round(
    rnd: StaticRound, width: int
) -> tuple[RoundVerdict, Counterexample | None]:
    """Certify one static round; returns its verdict and, when the
    round is irregular, the first offending warp as a counterexample."""
    if rnd.space == "shared":
        per_warp = shared_bank_multiplicities(rnd.addresses, width)
    else:
        per_warp = global_group_counts(rnd.addresses, width)
    verdict = RoundVerdict(
        kernel=rnd.kernel,
        index=rnd.index,
        space=rnd.space,
        kind=rnd.kind,
        array=rnd.array,
        num_warps=int(per_warp.shape[0]),
        stages=int(per_warp.sum()),
        max_per_warp=int(per_warp.max()) if per_warp.size else 0,
    )
    if verdict.ok:
        return verdict, None
    if rnd.space == "shared":
        return verdict, _shared_counterexample(rnd, width, per_warp)
    return verdict, _global_counterexample(rnd, width, per_warp)


@dataclass(frozen=True)
class Certificate:
    """A static proof (or refutation) of a plan's regularity.

    ``ok`` iff every shared round is conflict-free *and* every global
    round is coalesced; otherwise ``counterexample`` pinpoints the
    first violation.  ``plan_sha`` binds the certificate to the payload
    checksum of the plan file it was issued for (``None`` for
    certificates not yet bound to a file).
    """

    n: int
    m: int
    width: int
    rounds: tuple[RoundVerdict, ...]
    counterexample: Counterexample | None = None
    plan_sha: str | None = None
    version: int = CERTIFICATE_VERSION

    @property
    def ok(self) -> bool:
        return self.counterexample is None and all(
            r.ok for r in self.rounds
        )

    @property
    def conflict_free(self) -> bool:
        """Every shared (DMM) round is bank-conflict-free."""
        return all(r.ok for r in self.rounds if r.space == "shared")

    @property
    def coalesced(self) -> bool:
        """Every global (UMM) round is single-group per warp."""
        return all(r.ok for r in self.rounds if r.space == "global")

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    def bound_to(self, plan_sha: str) -> "Certificate":
        """A copy bound to a specific plan-file payload checksum."""
        return replace(self, plan_sha=plan_sha)

    def summary(self) -> str:
        """One- or two-line human-readable verdict."""
        shared = sum(1 for r in self.rounds if r.space == "shared")
        global_ = self.num_rounds - shared
        if self.ok:
            return (
                f"{self.num_rounds} rounds certified: {shared} shared "
                f"conflict-free, {global_} global coalesced "
                f"(n = {self.n}, w = {self.width})"
            )
        assert self.counterexample is not None
        return "NOT conflict-free: " + self.counterexample.describe()

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        counter = None
        if self.counterexample is not None:
            c = self.counterexample
            counter = {
                "kernel": c.kernel,
                "round_index": c.round_index,
                "space": c.space,
                "kind": c.kind,
                "array": c.array,
                "warp": c.warp,
                "block": c.block,
                "bank": c.bank,
                "lanes": list(c.lanes),
                "addresses": list(c.addresses),
                "groups": list(c.groups),
            }
        return {
            "version": self.version,
            "n": self.n,
            "m": self.m,
            "width": self.width,
            "plan_sha": self.plan_sha,
            "rounds": [
                {
                    "kernel": r.kernel,
                    "index": r.index,
                    "space": r.space,
                    "kind": r.kind,
                    "array": r.array,
                    "num_warps": r.num_warps,
                    "stages": r.stages,
                    "max_per_warp": r.max_per_warp,
                }
                for r in self.rounds
            ],
            "counterexample": counter,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Certificate":
        if not isinstance(payload, dict):
            raise CertificateError(
                f"certificate payload must be an object, got "
                f"{type(payload).__name__}"
            )
        try:
            version = int(payload["version"])
            if version != CERTIFICATE_VERSION:
                raise CertificateError(
                    f"unsupported certificate version {version}; this "
                    f"build reads version {CERTIFICATE_VERSION}"
                )
            rounds = tuple(
                RoundVerdict(
                    kernel=str(r["kernel"]),
                    index=int(r["index"]),
                    space=str(r["space"]),
                    kind=str(r["kind"]),
                    array=str(r["array"]),
                    num_warps=int(r["num_warps"]),
                    stages=int(r["stages"]),
                    max_per_warp=int(r["max_per_warp"]),
                )
                for r in payload["rounds"]
            )
            raw = payload.get("counterexample")
            counter = None
            if raw is not None:
                counter = Counterexample(
                    kernel=str(raw["kernel"]),
                    round_index=int(raw["round_index"]),
                    space=str(raw["space"]),
                    kind=str(raw["kind"]),
                    array=str(raw["array"]),
                    warp=int(raw["warp"]),
                    block=(
                        None if raw.get("block") is None
                        else int(raw["block"])
                    ),
                    bank=(
                        None if raw.get("bank") is None
                        else int(raw["bank"])
                    ),
                    lanes=tuple(int(v) for v in raw["lanes"]),
                    addresses=tuple(int(v) for v in raw["addresses"]),
                    groups=tuple(int(v) for v in raw.get("groups", ())),
                )
            sha = payload.get("plan_sha")
            return cls(
                n=int(payload["n"]),
                m=int(payload["m"]),
                width=int(payload["width"]),
                plan_sha=None if sha is None else str(sha),
                rounds=rounds,
                counterexample=counter,
                version=version,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CertificateError(
                f"malformed certificate payload: {exc!r}"
            ) from exc

    @classmethod
    def from_json(cls, text: str) -> "Certificate":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CertificateError(
                f"certificate is not valid JSON: {exc}"
            ) from exc
        return cls.from_dict(payload)


def certify_rounds(
    rounds: tuple[StaticRound, ...] | list[StaticRound],
    width: int,
    n: int,
    m: int,
) -> Certificate:
    """Certify an explicit static round sequence (used by tests and by
    :func:`certify_plan`).  Keeps the *first* counterexample found —
    in round order, the executor would hit it first."""
    verdicts: list[RoundVerdict] = []
    counter: Counterexample | None = None
    for rnd in rounds:
        verdict, bad = analyze_round(rnd, width)
        verdicts.append(verdict)
        if counter is None and bad is not None:
            counter = bad
    return Certificate(
        n=n, m=m, width=width, rounds=tuple(verdicts),
        counterexample=counter,
    )


def certify_program(program: "KernelProgram") -> Certificate:
    """Statically certify any regular lowered kernel program.

    Works for every program whose ops carry full schedules (scheduled
    row-wise, tiled transpose, gather-scatter); raises
    :class:`~repro.errors.StaticCheckError` on programs containing
    irregular (casual) ops, which have no conflict-freedom claim to
    prove.  ``m`` in the resulting certificate is the row-wise tile
    side when the program has one, else 0.
    """
    from repro.ir.ops import RowwiseScatter

    m = next(
        (op.m for op in program.ops
         if isinstance(op, RowwiseScatter) and op.regular),
        0,
    )
    width = int(program.width) or max(
        (getattr(op, "width", 0) for op in program.ops), default=0
    )
    if width < 1:
        raise StaticCheckError(
            f"program {program.engine!r} has no machine width; cannot "
            "partition address streams into warps"
        )
    return certify_rounds(
        program_rounds(program), width=width, n=int(program.n), m=int(m),
    )


def certify_plan(plan: "ScheduledPermutation") -> Certificate:
    """Statically certify a scheduled plan's 32 rounds.

    Returns a :class:`Certificate`; inspect ``certificate.ok`` (or the
    ``conflict_free`` / ``coalesced`` split) and, on failure,
    ``certificate.counterexample``.  Never raises on an irregular plan
    — refusal is the caller's policy (``save_plan`` refuses, the CLI
    reports).
    """
    return certify_rounds(
        plan_rounds(plan), width=int(plan.width), n=int(plan.n),
        m=int(plan.m),
    )
