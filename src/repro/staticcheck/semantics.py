"""Symbolic program semantics and translation validation.

Every lowered :class:`~repro.ir.program.KernelProgram` *denotes* a
permutation: running it over a payload ``a`` produces ``out`` with
``out[p[i]] = a[i]`` for a unique index map ``p`` (the repo-wide
destination-designated convention).  This module computes that index
map **symbolically** — op by op, from the op parameters alone, with no
executor and no payload — by abstract interpretation over element
positions: a vector ``dest`` tracks where each of the ``n`` input
elements currently lives, starting at ``dest = [0, 1, ..., n-1]``, and
each op is interpreted as a position transform (the position-space
mirror of what :class:`~repro.exec.reference.ReferenceExecutor` does in
data space).  After the last op, ``dest`` *is* the denoted ``p``.

On top of the denotation sit two proofs:

* **bijectivity** — the denoted map hits every output slot exactly
  once.  Drops (an element sliced away, a position no lane reads) and
  duplications (two elements landing on one slot, a position read
  twice) are refuted with a per-element counterexample.
* **translation validation** — :func:`validate_translation` proves
  ``denote(optimized) == denote(raw)`` and, when a requested
  permutation is supplied, ``denote(program) == requested``.  The
  result is a :class:`SemanticCertificate`: digest-bound, JSON
  round-trippable, and embedded into v3 plan files next to the
  conflict certificate (see :mod:`repro.core.io`).

The certificate stores the SHA-256 of the denotation's int64 bytes
(``denotation_sha``) rather than the n-vector itself, so plan files
stay small while loaders can still *recompute* the denotation from the
unpacked program and refuse any file whose program no longer denotes
its stored permutation.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import (
    CertificateError,
    SemanticValidationError,
    StaticCheckError,
)
from repro.ir.ops import (
    CasualRead,
    CasualWrite,
    CycleRotate,
    GatherScatter,
    KernelOp,
    Pad,
    RowwiseScatter,
    Slice,
    Transpose,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ir.program import KernelProgram

__all__ = [
    "SEMANTIC_CERTIFICATE_VERSION",
    "OpDenotation",
    "ProgramDenotation",
    "SemanticCertificate",
    "SemanticCounterexample",
    "denotation_digest",
    "denote_program",
    "prove_bijection",
    "validate_translation",
]

#: Schema version of serialised semantic certificates.
SEMANTIC_CERTIFICATE_VERSION = 1


@dataclass(frozen=True)
class SemanticCounterexample:
    """One input element refuting a semantic claim.

    ``stage`` names the proof that failed: ``"denotation"`` (an op
    dropped or duplicated a tracked element mid-program),
    ``"bijectivity"`` (two elements denote the same output slot),
    ``"optimized-vs-raw"`` (a pass changed the index map) or
    ``"requested"`` (the program does not denote the requested
    permutation).  ``index`` is the input element, ``expected`` /
    ``got`` its destination under the reference and offending maps
    (``-1`` when a side has no destination, e.g. a dropped element).
    """

    stage: str
    index: int
    expected: int
    got: int
    detail: str = ""

    def describe(self) -> str:
        base = (
            f"[{self.stage}] element {self.index}: expected "
            f"destination {self.expected}, got {self.got}"
        )
        return f"{base} ({self.detail})" if self.detail else base


@dataclass(frozen=True)
class OpDenotation:
    """The position-space effect of one op in a denotation walk."""

    index: int
    kind: str
    label: str
    in_size: int
    out_size: int
    moved: int

    def describe(self) -> str:
        size = (
            f"{self.in_size}"
            if self.in_size == self.out_size
            else f"{self.in_size} -> {self.out_size}"
        )
        return (
            f"op[{self.index}] {self.kind:<15} size {size:<14} "
            f"moves {self.moved} of {self.in_size} tracked elements"
        )


@dataclass(frozen=True)
class ProgramDenotation:
    """The denoted index map of a program, or why none exists.

    When ``failure`` is ``None``, ``index_map[i]`` is the output slot
    element ``i`` lands in (``out[index_map[i]] = a[i]``) and the map
    has been proved a bijection on ``0..n-1``.  Otherwise ``failure``
    pinpoints the first element whose tracking broke and ``index_map``
    holds the positions reached so far (diagnostic only).
    """

    engine: str
    n: int
    index_map: np.ndarray
    ops: tuple[OpDenotation, ...]
    failure: SemanticCounterexample | None = None

    @property
    def ok(self) -> bool:
        return self.failure is None

    def digest(self) -> str:
        return denotation_digest(self.index_map)

    def describe(self) -> str:
        lines = [
            f"denotation of {self.engine!r} (n = {self.n}, "
            f"{len(self.ops)} ops):"
        ]
        lines.extend("  " + op.describe() for op in self.ops)
        if self.failure is None:
            lines.append(
                f"  proved bijection on 0..{self.n - 1}; "
                f"digest {self.digest()[:16]}..."
            )
        else:
            lines.append("  NOT a bijection: " + self.failure.describe())
        return "\n".join(lines)


def denotation_digest(index_map: np.ndarray) -> str:
    """SHA-256 over the denotation's length and int64 bytes."""
    arr = np.ascontiguousarray(index_map, dtype=np.int64)
    h = hashlib.sha256()
    h.update(str(arr.shape[0]).encode("ascii"))
    h.update(b":")
    h.update(arr.tobytes())
    return h.hexdigest()


def _first_out_of_range(
    dest: np.ndarray, size: int, op: KernelOp, index: int
) -> SemanticCounterexample | None:
    bad = np.nonzero((dest < 0) | (dest >= size))[0]
    if bad.size == 0:
        return None
    i = int(bad[0])
    return SemanticCounterexample(
        stage="denotation",
        index=i,
        expected=-1,
        got=int(dest[i]),
        detail=(
            f"op[{index}] {op.kind} maps element {i} to position "
            f"{int(dest[i])}, outside the live array of {size}"
        ),
    )


def _denote_op(
    op: KernelOp, dest: np.ndarray, size: int, index: int
) -> tuple[np.ndarray, int, SemanticCounterexample | None]:
    """Apply one op's position transform to the tracked destinations.

    Returns ``(new_dest, new_size, failure)``.  Each branch mirrors the
    corresponding data movement in
    :class:`~repro.exec.reference.ReferenceExecutor._run_op`, rewritten
    as a map over *positions* instead of values.
    """
    if isinstance(op, RowwiseScatter):
        # out[r, gamma[r, c]] = mat[r, c]: position r*m + c moves to
        # r*m + gamma[r, c].
        gamma = np.asarray(op.gamma, dtype=np.int64)
        rows, m = gamma.shape
        if size != rows * m:
            return dest, size, SemanticCounterexample(
                stage="denotation", index=0, expected=size,
                got=rows * m,
                detail=f"op[{index}] rowwise-scatter shape mismatch",
            )
        r, c = dest // m, dest % m
        return r * m + gamma[r, c], size, None
    if isinstance(op, Transpose):
        # out = mat.reshape(m, m).T: position r*m + c moves to c*m + r.
        m = int(op.m)
        if size != m * m:
            return dest, size, SemanticCounterexample(
                stage="denotation", index=0, expected=size, got=m * m,
                detail=f"op[{index}] transpose shape mismatch",
            )
        return (dest % m) * m + dest // m, size, None
    if isinstance(op, (CasualWrite, CycleRotate)):
        # out[p[u]] = data[u]: position u moves to p[u].
        p = np.asarray(op.p, dtype=np.int64)
        return p[dest], size, None
    if isinstance(op, CasualRead):
        # out[u] = data[q[u]]: position j moves to the unique u with
        # q[u] == j.  A j read twice duplicates the element; a j never
        # read drops it.
        q = np.asarray(op.q, dtype=np.int64)
        counts = np.bincount(q, minlength=size)
        tracked = counts[dest]
        bad = np.nonzero(tracked != 1)[0]
        if bad.size:
            i = int(bad[0])
            kind = "duplicated" if tracked[i] > 1 else "dropped"
            return dest, size, SemanticCounterexample(
                stage="denotation", index=i, expected=1,
                got=int(tracked[i]),
                detail=(
                    f"op[{index}] casual-read {kind} element {i}: "
                    f"position {int(dest[i])} is read "
                    f"{int(tracked[i])} times by q"
                ),
            )
        inv = np.empty(size, dtype=np.int64)
        inv[q] = np.arange(q.shape[0], dtype=np.int64)
        return inv[dest], size, None
    if isinstance(op, GatherScatter):
        # out[t[lane]] = data[s[lane]]: position j moves to t[lane]
        # for the unique lane with s[lane] == j.
        s = np.asarray(op.s, dtype=np.int64)
        t = np.asarray(op.t, dtype=np.int64)
        counts = np.bincount(s, minlength=size)
        tracked = counts[dest]
        bad = np.nonzero(tracked != 1)[0]
        if bad.size:
            i = int(bad[0])
            kind = "duplicated" if tracked[i] > 1 else "dropped"
            return dest, size, SemanticCounterexample(
                stage="denotation", index=i, expected=1,
                got=int(tracked[i]),
                detail=(
                    f"op[{index}] gather-scatter {kind} element {i}: "
                    f"position {int(dest[i])} is gathered "
                    f"{int(tracked[i])} times by s"
                ),
            )
        inv = np.empty(size, dtype=np.int64)
        inv[s] = np.arange(s.shape[0], dtype=np.int64)
        return t[inv[dest]], size, None
    if isinstance(op, Pad):
        # Zero-extension: positions are unchanged, the array grows.
        return dest, int(op.padded_n), None
    if isinstance(op, Slice):
        # out = data[:k]: any tracked element at position >= k is gone.
        k = int(op.n)
        bad = np.nonzero(dest >= k)[0]
        if bad.size:
            i = int(bad[0])
            return dest, size, SemanticCounterexample(
                stage="denotation", index=i, expected=-1,
                got=int(dest[i]),
                detail=(
                    f"op[{index}] slice to {k} drops element {i} at "
                    f"position {int(dest[i])}"
                ),
            )
        return dest, k, None
    raise StaticCheckError(
        f"no denotation rule for op kind {op.kind!r} "
        f"({type(op).__name__})"
    )


def denote_program(program: "KernelProgram") -> ProgramDenotation:
    """Abstractly interpret a program into its denoted index map.

    Walks the ops once, tracking the position of every input element;
    no executor is constructed and no payload is moved.  The walk stops
    at the first op that drops or duplicates a tracked element; the
    final map is additionally checked to be a bijection on ``0..n-1``.
    """
    program.validate()
    n = int(program.n)
    dest = np.arange(n, dtype=np.int64)
    size = n
    summaries: list[OpDenotation] = []
    for index, op in enumerate(program.ops):
        new_dest, new_size, failure = _denote_op(op, dest, size, index)
        summaries.append(
            OpDenotation(
                index=index,
                kind=op.kind,
                label=op.label,
                in_size=size,
                out_size=new_size,
                moved=int(np.count_nonzero(new_dest != dest))
                if new_dest.shape == dest.shape
                else n,
            )
        )
        if failure is not None:
            return ProgramDenotation(
                engine=program.engine, n=n, index_map=dest,
                ops=tuple(summaries), failure=failure,
            )
        out_of_range = _first_out_of_range(new_dest, new_size, op, index)
        if out_of_range is not None:
            return ProgramDenotation(
                engine=program.engine, n=n, index_map=new_dest,
                ops=tuple(summaries), failure=out_of_range,
            )
        dest, size = new_dest, new_size
    if size != n:
        failure = SemanticCounterexample(
            stage="bijectivity", index=0, expected=n, got=size,
            detail=(
                f"program ends at size {size}, not n = {n}; the "
                "denotation is not an endomap of 0..n-1"
            ),
        )
        return ProgramDenotation(
            engine=program.engine, n=n, index_map=dest,
            ops=tuple(summaries), failure=failure,
        )
    failure = prove_bijection(dest, n)
    return ProgramDenotation(
        engine=program.engine, n=n, index_map=dest,
        ops=tuple(summaries), failure=failure,
    )


def prove_bijection(
    index_map: np.ndarray, n: int
) -> SemanticCounterexample | None:
    """Prove ``index_map`` is a bijection on ``0..n-1``.

    Returns ``None`` on success, else a counterexample naming the
    first element (in input order) whose destination collides with an
    earlier element's.
    """
    arr = np.asarray(index_map, dtype=np.int64)
    if arr.shape[0] != n:
        return SemanticCounterexample(
            stage="bijectivity", index=0, expected=n,
            got=int(arr.shape[0]),
            detail=f"index map has {arr.shape[0]} entries, not {n}",
        )
    counts = np.bincount(arr, minlength=n)
    if arr.size and int(counts.max(initial=0)) <= 1:
        return None
    # First element (input order) sharing a destination with an
    # earlier one.
    dup = np.nonzero(counts[arr] > 1)[0]
    first = int(dup[0])
    partner = int(np.nonzero(arr == arr[first])[0][1])
    return SemanticCounterexample(
        stage="bijectivity",
        index=partner,
        expected=-1,
        got=int(arr[partner]),
        detail=(
            f"elements {first} and {partner} both denote output slot "
            f"{int(arr[first])}"
        ),
    )


def _first_divergence(
    reference: np.ndarray, candidate: np.ndarray, stage: str
) -> SemanticCounterexample | None:
    """First index where two denotations disagree, or ``None``."""
    if reference.shape != candidate.shape:
        return SemanticCounterexample(
            stage=stage, index=0, expected=int(reference.shape[0]),
            got=int(candidate.shape[0]),
            detail="index maps have different lengths",
        )
    diff = np.nonzero(reference != candidate)[0]
    if diff.size == 0:
        return None
    i = int(diff[0])
    return SemanticCounterexample(
        stage=stage, index=i, expected=int(reference[i]),
        got=int(candidate[i]),
    )


@dataclass(frozen=True)
class SemanticCertificate:
    """A machine-checked proof that a compile preserved semantics.

    ``ok`` iff the optimized program's denotation is a bijection, equal
    to the raw program's, and (when one was supplied) equal to the
    requested permutation.  ``blame`` names the pipeline pass that
    first broke the translation (filled in by the pipeline's
    ``validate=True`` mode), ``counterexample`` the first diverging
    element.  ``denotation_sha`` digests the proved index map so a plan
    loader can recompute the denotation from the persisted program and
    compare; ``plan_sha`` binds the certificate to one plan file's
    payload checksum, exactly like the conflict certificate.
    """

    engine: str
    n: int
    width: int
    pipeline: str | None
    raw_ops: int
    optimized_ops: int
    denotation_sha: str
    requested_sha: str | None = None
    bijective: bool = True
    matches_raw: bool = True
    matches_requested: bool | None = None
    blame: str | None = None
    counterexample: SemanticCounterexample | None = None
    plan_sha: str | None = None
    version: int = SEMANTIC_CERTIFICATE_VERSION

    @property
    def ok(self) -> bool:
        return (
            self.bijective
            and self.matches_raw
            and self.matches_requested is not False
        )

    def bound_to(self, plan_sha: str) -> "SemanticCertificate":
        """A copy bound to a specific plan-file payload checksum."""
        return replace(self, plan_sha=plan_sha)

    def with_blame(self, blame: str) -> "SemanticCertificate":
        """A copy naming the pipeline pass that broke the translation."""
        return replace(self, blame=blame)

    def summary(self) -> str:
        if self.ok:
            requested = (
                "" if self.matches_requested is None
                else " == requested"
            )
            return (
                f"semantics certified: denote(optimized) == "
                f"denote(raw){requested}, bijective on 0..{self.n - 1} "
                f"({self.raw_ops} -> {self.optimized_ops} ops, "
                f"digest {self.denotation_sha[:16]}...)"
            )
        blame = f" [pass {self.blame!r}]" if self.blame else ""
        detail = (
            self.counterexample.describe()
            if self.counterexample is not None
            else "no counterexample recorded"
        )
        return f"semantics REFUTED{blame}: {detail}"

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        counter = None
        if self.counterexample is not None:
            c = self.counterexample
            counter = {
                "stage": c.stage,
                "index": c.index,
                "expected": c.expected,
                "got": c.got,
                "detail": c.detail,
            }
        return {
            "version": self.version,
            "engine": self.engine,
            "n": self.n,
            "width": self.width,
            "pipeline": self.pipeline,
            "raw_ops": self.raw_ops,
            "optimized_ops": self.optimized_ops,
            "denotation_sha": self.denotation_sha,
            "requested_sha": self.requested_sha,
            "bijective": self.bijective,
            "matches_raw": self.matches_raw,
            "matches_requested": self.matches_requested,
            "blame": self.blame,
            "counterexample": counter,
            "plan_sha": self.plan_sha,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SemanticCertificate":
        if not isinstance(payload, dict):
            raise CertificateError(
                f"semantic certificate payload must be an object, got "
                f"{type(payload).__name__}"
            )
        try:
            version = int(payload["version"])
            if version != SEMANTIC_CERTIFICATE_VERSION:
                raise CertificateError(
                    f"unsupported semantic certificate version "
                    f"{version}; this build reads version "
                    f"{SEMANTIC_CERTIFICATE_VERSION}"
                )
            raw = payload.get("counterexample")
            counter = None
            if raw is not None:
                counter = SemanticCounterexample(
                    stage=str(raw["stage"]),
                    index=int(raw["index"]),
                    expected=int(raw["expected"]),
                    got=int(raw["got"]),
                    detail=str(raw.get("detail", "")),
                )
            pipeline = payload.get("pipeline")
            requested_sha = payload.get("requested_sha")
            matches_requested = payload.get("matches_requested")
            blame = payload.get("blame")
            sha = payload.get("plan_sha")
            return cls(
                engine=str(payload["engine"]),
                n=int(payload["n"]),
                width=int(payload["width"]),
                pipeline=None if pipeline is None else str(pipeline),
                raw_ops=int(payload["raw_ops"]),
                optimized_ops=int(payload["optimized_ops"]),
                denotation_sha=str(payload["denotation_sha"]),
                requested_sha=(
                    None if requested_sha is None else str(requested_sha)
                ),
                bijective=bool(payload["bijective"]),
                matches_raw=bool(payload["matches_raw"]),
                matches_requested=(
                    None if matches_requested is None
                    else bool(matches_requested)
                ),
                blame=None if blame is None else str(blame),
                counterexample=counter,
                plan_sha=None if sha is None else str(sha),
                version=version,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CertificateError(
                f"malformed semantic certificate payload: {exc!r}"
            ) from exc

    @classmethod
    def from_json(cls, text: str) -> "SemanticCertificate":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CertificateError(
                f"semantic certificate is not valid JSON: {exc}"
            ) from exc
        return cls.from_dict(payload)


def validate_translation(
    raw: "KernelProgram",
    optimized: "KernelProgram",
    requested: np.ndarray | None = None,
    pipeline_signature: str | None = None,
) -> SemanticCertificate:
    """Prove ``denote(optimized) == denote(raw)`` (== ``requested``).

    The central translation-validation entry point: both programs are
    denoted symbolically and compared element-wise; the optimized
    denotation is additionally proved bijective, and — when the
    requested permutation is supplied — equal to it.  Never raises on
    refutation; inspect ``certificate.ok`` (policy lives with the
    caller: the pipeline raises, the planner refuses to cache, the
    plan writer refuses to persist).  Pass the same program twice to
    certify a single program against a requested permutation.
    """
    raw_den = denote_program(raw)
    opt_den = raw_den if optimized is raw else denote_program(optimized)
    cert = SemanticCertificate(
        engine=optimized.engine,
        n=int(optimized.n),
        width=int(optimized.width),
        pipeline=pipeline_signature,
        raw_ops=len(raw.ops),
        optimized_ops=len(optimized.ops),
        denotation_sha=opt_den.digest(),
    )
    if not opt_den.ok:
        return replace(
            cert, bijective=False, counterexample=opt_den.failure
        )
    if not raw_den.ok:
        # The optimized program denotes a bijection but the raw one
        # does not: the rewrite manufactured a permutation out of a
        # broken program, which is its own kind of wrong.
        return replace(
            cert, matches_raw=False, counterexample=raw_den.failure
        )
    diverged = _first_divergence(
        raw_den.index_map, opt_den.index_map, "optimized-vs-raw"
    )
    if diverged is not None:
        return replace(cert, matches_raw=False, counterexample=diverged)
    if requested is None:
        return cert
    wanted = np.asarray(requested, dtype=np.int64)
    cert = replace(cert, requested_sha=denotation_digest(wanted))
    diverged = _first_divergence(
        wanted, opt_den.index_map, "requested"
    )
    if diverged is not None:
        return replace(
            cert, matches_requested=False, counterexample=diverged
        )
    return replace(cert, matches_requested=True)


class SemanticChecker:
    """Per-pass translation validator for the pipeline's fixpoint loop.

    Denotes the input program once, then :meth:`check` denotes each
    rewritten program and raises
    :class:`~repro.errors.SemanticValidationError` — with the pass
    blamed on the certificate — the moment a rewrite changes the index
    map.  Used by ``PassPipeline.run(..., validate=True)``.
    """

    def __init__(self, program: "KernelProgram") -> None:
        self._base = denote_program(program)
        self._raw_ops = len(program.ops)
        if not self._base.ok:
            cert = SemanticCertificate(
                engine=program.engine,
                n=int(program.n),
                width=int(program.width),
                pipeline=None,
                raw_ops=self._raw_ops,
                optimized_ops=self._raw_ops,
                denotation_sha=self._base.digest(),
                bijective=False,
                counterexample=self._base.failure,
            )
            raise SemanticValidationError(
                "cannot validate rewrites of a non-bijective program: "
                + cert.summary(),
                certificate=cert,
            )

    def check(
        self, pass_name: str, rewritten: "KernelProgram"
    ) -> None:
        den = denote_program(rewritten)
        failure = den.failure or _first_divergence(
            self._base.index_map, den.index_map, "optimized-vs-raw"
        )
        if failure is None:
            return
        cert = SemanticCertificate(
            engine=rewritten.engine,
            n=int(rewritten.n),
            width=int(rewritten.width),
            pipeline=None,
            raw_ops=self._raw_ops,
            optimized_ops=len(rewritten.ops),
            denotation_sha=den.digest(),
            bijective=den.ok,
            matches_raw=False,
            blame=pass_name,
            counterexample=failure,
        )
        raise SemanticValidationError(cert.summary(), certificate=cert)
