"""Memory-race detection over access-round traces.

The paper's model is race-free by construction: each round is one
access per thread, rounds are barrier-separated, and the scheduled
permutation's scatter addresses are permutations (no two threads ever
write one cell).  This module checks those assumptions instead of
trusting them:

* **intra-round write-write** — two active threads of one write round
  target the same address (same block for shared rounds).  The outcome
  is nondeterministic on real hardware regardless of barriers; on the
  NumPy executors it silently keeps the *last* writer.  This is exactly
  the corruption :class:`repro.resilience.FaultPlan` can inject with
  ``scatter_collisions``.
* **cross-round read-write / write-write hazards** — meaningful only
  when rounds are *not* barrier-separated
  (:func:`repro.machine.pipeline.simulate_access_sequence` with
  ``barrier=False``): consecutive rounds on the same array overlap in
  the pipeline, so thread ``u`` of round ``k+1`` may touch an address
  thread ``v != u`` of round ``k`` is still writing.

Wire-up: ``HMM(..., detect_races=True)`` and
``DMM/UMM.simulate(..., detect_races=True)`` call :func:`check_races`
and raise :class:`~repro.errors.MemoryRaceError` on any finding.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import MemoryRaceError
from repro.machine.requests import AccessRound


@dataclass(frozen=True)
class RaceFinding:
    """One detected collision.

    ``round_a``/``round_b`` are positions in the checked round sequence
    (equal for intra-round findings); ``threads`` lists (a sample of)
    the colliding flat thread indices; ``block`` is the owning thread
    block for shared rounds.
    """

    kind: str        #: "write-write" | "read-write" | "write-read"
    scope: str       #: "intra-round" | "cross-round"
    space: str
    array: str
    round_a: int
    round_b: int
    address: int
    threads: tuple[int, ...]
    block: int | None = None

    def describe(self) -> str:
        where = f"{self.space} array {self.array!r}"
        if self.block is not None:
            where += f", block {self.block}"
        threads = ", ".join(str(t) for t in self.threads)
        if self.scope == "intra-round":
            return (
                f"{self.kind} race in round {self.round_a} ({where}): "
                f"threads {threads} all write address {self.address}"
            )
        return (
            f"{self.kind} hazard between rounds {self.round_a} and "
            f"{self.round_b} ({where}): threads {threads} touch "
            f"address {self.address} without a barrier in between"
        )


def _keys(
    rnd: AccessRound, stride: int | None = None
) -> tuple[np.ndarray, np.ndarray, int]:
    """Composite (block, address) keys of a round's active threads.

    Returns ``(keys, thread_indices, stride)`` where ``stride`` is the
    per-block key stride (0 for global rounds, which have one flat
    address space).  Pass ``stride`` to key two rounds of the same
    array into one comparable space.
    """
    addresses = np.asarray(rnd.addresses, dtype=np.int64)
    active = addresses >= 0
    threads = np.nonzero(active)[0]
    addr = addresses[threads]
    if rnd.space == "shared" and rnd.block_size is not None:
        if stride is None:
            stride = int(addr.max()) + 1 if addr.size else 1
        blocks = threads // rnd.block_size
        return blocks * stride + addr, threads, stride
    return addr, threads, 0


def _first_duplicate(
    keys: np.ndarray, threads: np.ndarray
) -> tuple[int, np.ndarray] | None:
    """The smallest duplicated key and the threads holding it."""
    if keys.size < 2:
        return None
    order = np.argsort(keys, kind="stable")
    ordered = keys[order]
    dup = ordered[1:] == ordered[:-1]
    if not dup.any():
        return None
    key = int(ordered[:-1][dup][0])
    return key, threads[keys == key]


def _split_key(
    key: int, stride: int
) -> tuple[int, int | None]:
    if stride <= 0:
        return key, None
    return key % stride, key // stride


def find_intra_round_races(
    rounds: Sequence[AccessRound], max_findings: int = 16
) -> list[RaceFinding]:
    """Write-write collisions inside single write rounds."""
    findings: list[RaceFinding] = []
    for index, rnd in enumerate(rounds):
        if rnd.kind != "write":
            continue
        keys, threads, stride = _keys(rnd)
        hit = _first_duplicate(keys, threads)
        if hit is None:
            continue
        key, colliding = hit
        address, block = _split_key(key, stride)
        findings.append(
            RaceFinding(
                kind="write-write",
                scope="intra-round",
                space=rnd.space,
                array=rnd.array,
                round_a=index,
                round_b=index,
                address=address,
                block=block,
                threads=tuple(int(t) for t in colliding[:8]),
            )
        )
        if len(findings) >= max_findings:
            break
    return findings


def find_cross_round_hazards(
    rounds: Sequence[AccessRound], max_findings: int = 16
) -> list[RaceFinding]:
    """Hazards between *consecutive* rounds on the same array.

    Only meaningful for unbarriered execution: with barriers (the
    model's default, and the paper's definition of a round) consecutive
    rounds cannot overlap and these pairs are safe by construction.
    A hazard is an address written in one round and touched by a
    *different* thread in the next.
    """
    findings: list[RaceFinding] = []
    for index in range(len(rounds) - 1):
        first, second = rounds[index], rounds[index + 1]
        if first.space != second.space or first.array != second.array:
            continue
        if first.kind != "write" and second.kind != "write":
            continue
        keys_a, threads_a, stride_a = _keys(first)
        keys_b, threads_b, stride_b = _keys(second)
        stride = max(stride_a, stride_b)
        if stride_a != stride:
            keys_a, threads_a, _ = _keys(first, stride)
        if stride_b != stride:
            keys_b, threads_b, _ = _keys(second, stride)
        common, idx_a, idx_b = np.intersect1d(
            keys_a, keys_b, return_indices=True
        )
        if common.size == 0:
            continue
        clash = threads_a[idx_a] != threads_b[idx_b]
        if not clash.any():
            continue
        pick = int(np.nonzero(clash)[0][0])
        key = int(common[pick])
        address, block = _split_key(key, stride)
        kind = "write-write" if (
            first.kind == "write" and second.kind == "write"
        ) else ("write-read" if first.kind == "write" else "read-write")
        findings.append(
            RaceFinding(
                kind=kind,
                scope="cross-round",
                space=first.space,
                array=first.array,
                round_a=index,
                round_b=index + 1,
                address=address,
                block=block,
                threads=(
                    int(threads_a[idx_a][pick]),
                    int(threads_b[idx_b][pick]),
                ),
            )
        )
        if len(findings) >= max_findings:
            break
    return findings


def detect_races(
    rounds: Iterable[AccessRound],
    barrier: bool = True,
    max_findings: int = 16,
) -> list[RaceFinding]:
    """All detectable races in a round sequence.

    Intra-round write-write collisions are always checked; cross-round
    hazards are added only when ``barrier=False`` (unbarriered pipeline
    semantics — with barriers they cannot manifest).
    """
    rounds = list(rounds)
    findings = find_intra_round_races(rounds, max_findings)
    if not barrier and len(findings) < max_findings:
        findings.extend(
            find_cross_round_hazards(
                rounds, max_findings - len(findings)
            )
        )
    return findings


def check_races(
    rounds: Iterable[AccessRound],
    barrier: bool = True,
    context: str = "",
) -> None:
    """Raise :class:`~repro.errors.MemoryRaceError` on any finding."""
    findings = detect_races(rounds, barrier=barrier)
    if not findings:
        return
    prefix = f"{context}: " if context else ""
    detail = "; ".join(f.describe() for f in findings[:3])
    more = len(findings) - 3
    if more > 0:
        detail += f" (+{more} more)"
    raise MemoryRaceError(prefix + detail, findings=findings)
