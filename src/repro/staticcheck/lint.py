"""Project-specific AST lint rules (``python -m repro check``).

Generic linters cannot know this codebase's layering rules; these five
checks encode them:

``REP101`` **bank/group arithmetic outside the machine layer** — the
    expressions ``x % width`` and ``x // width`` *are* the memory
    model (bank of an address, address group of an address).  Scattering
    them through application code invites silent divergence from
    :meth:`repro.machine.dmm.DMM.bank` /
    :meth:`repro.machine.umm.UMM.address_group`.  Allowed in the
    machine, core-planner, colouring and staticcheck layers (where the
    model is implemented) and in the figure renderers; divisibility
    *checks* (``x % width != 0`` and friends) are exempt everywhere.

``REP102`` **unguarded telemetry** — library code must emit telemetry
    through the module-level ``telemetry.span()/count()/gauge()``
    helpers (no-ops when no tracer is active), never by instantiating
    :class:`repro.telemetry.Tracer` itself or importing the tracer
    internals.  Entry points that legitimately *own* a tracer (the CLI,
    the report runner, the resilience engine) are allowlisted.  Also
    flags a ``span(...)`` call used as a bare statement: the span is
    created but never entered, so it records nothing — always a bug.

``REP103`` **hard-coded narrow integer dtypes** — fixed ``int8/16/32``
    (and unsigned) dtypes in ``astype``/``np.array``/``np.asarray``/
    ``np.empty``/``np.zeros``/``np.full`` silently overflow when sizes
    grow; :func:`repro.util.arrays.smallest_index_dtype` is the blessed
    idiom (and its home module is exempt).

``REP104`` **unregistered engine class** — a class in the engine layers
    (``repro.core``, ``repro.cpu``) that defines ``lower()`` is a
    permutation engine, and every engine must be registered with
    :func:`repro.ir.registry.register_engine` so the selector, the CLI
    ``--engine`` options and plan format v3 can find it.  An engine
    left off the registry silently disappears from ``engine_names()``
    and cannot be reloaded from a saved plan.  Deliberate façades
    (e.g. :class:`repro.core.selector.AutoPermutation`, which wraps a
    registered engine rather than being one) suppress the rule inline.

``REP105`` **raw lower() result executed without the pass pipeline** —
    executors must see *optimized* programs.  An executor call whose
    program argument is a direct ``....lower()`` call (e.g.
    ``ReferenceExecutor().run(engine.lower(), a)``) bypasses the
    default :class:`~repro.passes.framework.PassPipeline`; route
    through ``engine.lower_optimized()`` (or an explicit
    ``pipeline.run(engine.lower())`` — pipeline receivers are the
    blessed consumers of raw lowerings and are exempt).  The rule is
    syntactic: it flags the inline-call pattern, not programs passed
    through variables.

Suppression: a source line containing ``staticcheck: ignore`` silences
all rules on that line; ``staticcheck: ignore[REP105]`` silences one.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.errors import StaticCheckError

#: Rule catalogue: name -> one-line description (docs and ``--rule``).
LINT_RULES: dict[str, str] = {
    "REP101": "bank/group index arithmetic outside the machine layer",
    "REP102": "telemetry not using the guarded span()/count() helpers",
    "REP103": "hard-coded narrow integer dtype (overflow pitfall)",
    "REP104": "engine class not registered with @register_engine",
    "REP105": "raw lower() result executed without the pass pipeline",
}

#: Module prefixes REP104 treats as engine layers: a class defining
#: ``lower()`` here must carry the ``@register_engine`` decorator.
_ENGINE_LAYERS = ("repro.core", "repro.cpu")

#: Module prefixes where the memory model is *implemented* and REP101
#: does not apply.  ``analysis.figures`` renders the Figure 4 closed
#: form, and ``repro.passes`` computes the costing annotation
#: (predicted stages = rounds x ceil(n / width)); both are deliberately
#: exempt.
_BANK_ARITH_ALLOWED = (
    "repro.machine",
    "repro.core",
    "repro.coloring",
    "repro.staticcheck",
    "repro.analysis.figures",
    "repro.passes",
)

#: Modules allowed to instantiate a Tracer: the telemetry package
#: itself plus the entry points that own one by design.
_TRACER_ALLOWED = (
    "repro.telemetry",
    "repro.cli",
    "repro.report",
    "repro.resilience.engine",
)

#: Width-like identifiers whose `% x` / `// x` is bank/group math.
_WIDTH_NAMES = frozenset({"w", "width"})

#: Narrow integer dtype spellings REP103 refuses.
_NARROW_DTYPES = frozenset(
    {"int8", "int16", "int32", "uint8", "uint16", "uint32"}
)

#: Constructors whose ``dtype=`` keyword REP103 inspects (``np.ones``
#: is deliberately absent: the colouring backends use ``int8`` ones
#: vectors as sparse-matrix payloads, where overflow is impossible).
_DTYPE_CALLS = frozenset(
    {"array", "asarray", "empty", "zeros", "full", "arange"}
)

_IGNORE_RE = re.compile(r"staticcheck:\s*ignore(?:\[([A-Z0-9, ]+)\])?")

_DEFAULT_ROOT = Path(__file__).resolve().parent.parent


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a precise source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} " \
               f"{self.message}"


def module_name_of(path: Path) -> str:
    """Dotted module name of a source file (``repro.machine.dmm``).

    Resolved from the last path component named ``repro``; files
    outside a ``repro`` tree keep their stem as a best-effort name.
    """
    parts = path.resolve().with_suffix("").parts
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        dotted = ".".join(parts[idx:])
    else:
        dotted = path.stem
    if dotted.endswith(".__init__"):
        dotted = dotted[: -len(".__init__")]
    return dotted


def _allowed(module: str, prefixes: Sequence[str]) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in prefixes
    )


def _is_width_name(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _WIDTH_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _WIDTH_NAMES
    return False


def _narrow_dtype_spelling(node: ast.expr) -> str | None:
    """The narrow-dtype name an expression spells, if any."""
    if isinstance(node, ast.Attribute) and node.attr in _NARROW_DTYPES:
        return node.attr
    if isinstance(node, ast.Name) and node.id in _NARROW_DTYPES:
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        if node.value in _NARROW_DTYPES:
            return node.value
    return None


class _Visitor(ast.NodeVisitor):
    """Single-pass visitor running all three rules over one module."""

    def __init__(self, module: str, path: str) -> None:
        self.module = module
        self.path = path
        self.findings: list[LintFinding] = []
        self._compare_depth = 0

    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            LintFinding(
                rule=rule,
                path=self.path,
                line=int(getattr(node, "lineno", 1)),
                col=int(getattr(node, "col_offset", 0)),
                message=message,
            )
        )

    # -- REP101 --------------------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        # `x % width != 0` is a divisibility check, not bank math.
        self._compare_depth += 1
        try:
            self.generic_visit(node)
        finally:
            self._compare_depth -= 1

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if (
            isinstance(node.op, (ast.Mod, ast.FloorDiv))
            and _is_width_name(node.right)
            and self._compare_depth == 0
            and not _allowed(self.module, _BANK_ARITH_ALLOWED)
        ):
            op = "%" if isinstance(node.op, ast.Mod) else "//"
            self._report(
                "REP101", node,
                f"bank/group arithmetic `... {op} width` belongs in "
                "the machine layer; use DMM.bank() / "
                "UMM.address_group() or move the computation",
            )
        self.generic_visit(node)

    # -- REP102 --------------------------------------------------------

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if (
            node.module is not None
            and node.module.startswith("repro.telemetry.")
            and not _allowed(self.module, ("repro.telemetry",))
        ):
            self._report(
                "REP102", node,
                f"import of telemetry internals ({node.module}); use "
                "the guarded repro.telemetry.span()/count()/gauge() "
                "helpers",
            )
        self.generic_visit(node)

    def _is_tracer_call(self, node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Name):
            return func.id == "Tracer"
        if isinstance(func, ast.Attribute):
            return func.attr == "Tracer"
        return False

    def visit_Call(self, node: ast.Call) -> None:
        if self._is_tracer_call(node) and not _allowed(
            self.module, _TRACER_ALLOWED
        ):
            self._report(
                "REP102", node,
                "library code must not own a Tracer; emit through the "
                "guarded telemetry.span()/count()/gauge() helpers so "
                "the caller controls collection",
            )
        self._check_rep103(node)
        self._check_rep105(node)
        self.generic_visit(node)

    def visit_Expr(self, node: ast.Expr) -> None:
        value = node.value
        if isinstance(value, ast.Call):
            func = value.func
            name = (
                func.attr if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name) else None
            )
            if name == "span":
                self._report(
                    "REP102", node,
                    "span created but never entered — it records "
                    "nothing; use `with telemetry.span(...):`",
                )
        self.generic_visit(node)

    # -- REP104 --------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if (
            _allowed(self.module, _ENGINE_LAYERS)
            and any(
                isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                and item.name == "lower"
                for item in node.body
            )
            and not any(
                self._is_register_engine(dec) for dec in node.decorator_list
            )
        ):
            self._report(
                "REP104", node,
                f"engine class {node.name} defines lower() but is not "
                "registered; decorate it with @register_engine(...) so "
                "the selector, the CLI and plan files can find it",
            )
        self.generic_visit(node)

    @staticmethod
    def _is_register_engine(node: ast.expr) -> bool:
        func = node.func if isinstance(node, ast.Call) else node
        if isinstance(func, ast.Name):
            return func.id == "register_engine"
        if isinstance(func, ast.Attribute):
            return func.attr == "register_engine"
        return False

    # -- REP103 --------------------------------------------------------

    def _check_rep103(self, node: ast.Call) -> None:
        if _allowed(self.module, ("repro.util.arrays",)):
            return
        func = node.func
        spelling: str | None = None
        if isinstance(func, ast.Attribute) and func.attr == "astype":
            if node.args:
                spelling = _narrow_dtype_spelling(node.args[0])
        elif isinstance(func, ast.Attribute) and func.attr in _DTYPE_CALLS:
            for keyword in node.keywords:
                if keyword.arg == "dtype":
                    spelling = _narrow_dtype_spelling(keyword.value)
        if spelling is not None:
            self._report(
                "REP103", node,
                f"hard-coded narrow dtype np.{spelling}; derive it "
                "with repro.util.arrays.smallest_index_dtype to avoid "
                "silent overflow when sizes grow",
            )

    # -- REP105 --------------------------------------------------------

    #: Executor entry points whose program argument REP105 inspects.
    _EXECUTOR_METHODS = frozenset({"run", "simulate"})

    def _check_rep105(self, node: ast.Call) -> None:
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in self._EXECUTOR_METHODS
        ):
            return
        if self._is_pipeline_receiver(func.value):
            # `pipeline.run(engine.lower())` IS the optimization step.
            return
        for arg in node.args:
            if (
                isinstance(arg, ast.Call)
                and isinstance(arg.func, ast.Attribute)
                and arg.func.attr == "lower"
            ):
                self._report(
                    "REP105", node,
                    "raw lower() result passed straight to an "
                    "executor, bypassing the default PassPipeline; "
                    "use engine.lower_optimized() (or run the "
                    "program through a pipeline first)",
                )
                return

    @staticmethod
    def _is_pipeline_receiver(node: ast.expr) -> bool:
        """True when the call receiver is pipeline-like by name
        (``pipeline.run(...)``, ``self.pipeline.run(...)``,
        ``default_pipeline().run(...)``)."""
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            else:
                return False
        else:
            return False
        return "pipeline" in name.lower()


def _suppressed(source_lines: list[str], finding: LintFinding) -> bool:
    if not 1 <= finding.line <= len(source_lines):
        return False
    match = _IGNORE_RE.search(source_lines[finding.line - 1])
    if match is None:
        return False
    rules = match.group(1)
    if rules is None:
        return True
    return finding.rule in {r.strip() for r in rules.split(",")}


def lint_source(
    source: str, path: str, module: str | None = None,
    rules: Sequence[str] | None = None,
) -> list[LintFinding]:
    """Lint one module's source text (unit-testable entry point)."""
    if module is None:
        module = module_name_of(Path(path))
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise StaticCheckError(
            f"{path}: cannot lint, file does not parse: {exc}"
        ) from exc
    visitor = _Visitor(module=module, path=path)
    visitor.visit(tree)
    lines = source.splitlines()
    selected = set(rules) if rules is not None else None
    findings = [
        finding
        for finding in visitor.findings
        if (selected is None or finding.rule in selected)
        and not _suppressed(lines, finding)
    ]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def iter_source_files(
    paths: Sequence[str | Path] | None = None,
) -> Iterator[Path]:
    """The Python files a lint run covers (defaults to the installed
    ``repro`` package tree)."""
    roots = (
        [Path(p) for p in paths] if paths else [_DEFAULT_ROOT]
    )
    for root in roots:
        if root.is_file():
            yield root
        elif root.is_dir():
            yield from sorted(root.rglob("*.py"))
        else:
            raise StaticCheckError(f"lint path does not exist: {root}")


def run_lint(
    paths: Sequence[str | Path] | None = None,
    rules: Sequence[str] | None = None,
) -> list[LintFinding]:
    """Run the rule catalogue over ``paths`` (default: the ``repro``
    package) and return all surviving findings, sorted."""
    if rules is not None:
        unknown = set(rules) - set(LINT_RULES)
        if unknown:
            raise StaticCheckError(
                f"unknown lint rule(s) {sorted(unknown)}; available: "
                f"{sorted(LINT_RULES)}"
            )
    findings: list[LintFinding] = []
    for path in iter_source_files(paths):
        findings.extend(
            lint_source(
                path.read_text(encoding="utf-8"), str(path), rules=rules
            )
        )
    return findings
