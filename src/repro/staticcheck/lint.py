"""Project-specific AST lint rules (``python -m repro check``).

Generic linters cannot know this codebase's layering rules; these eight
checks encode them:

``REP101`` **bank/group arithmetic outside the machine layer** — the
    expressions ``x % width`` and ``x // width`` *are* the memory
    model (bank of an address, address group of an address).  Scattering
    them through application code invites silent divergence from
    :meth:`repro.machine.dmm.DMM.bank` /
    :meth:`repro.machine.umm.UMM.address_group`.  Allowed in the
    machine, core-planner, colouring and staticcheck layers (where the
    model is implemented) and in the figure renderers; divisibility
    *checks* (``x % width != 0`` and friends) are exempt everywhere.

``REP102`` **unguarded telemetry** — library code must emit telemetry
    through the module-level ``telemetry.span()/count()/gauge()``
    helpers (no-ops when no tracer is active), never by instantiating
    :class:`repro.telemetry.Tracer` itself or importing the tracer
    internals.  Entry points that legitimately *own* a tracer (the CLI,
    the report runner, the resilience engine) are allowlisted.  Also
    flags a ``span(...)`` call used as a bare statement: the span is
    created but never entered, so it records nothing — always a bug.

``REP103`` **hard-coded narrow integer dtypes** — fixed ``int8/16/32``
    (and unsigned) dtypes in ``astype``/``np.array``/``np.asarray``/
    ``np.empty``/``np.zeros``/``np.full`` silently overflow when sizes
    grow; :func:`repro.util.arrays.smallest_index_dtype` is the blessed
    idiom (and its home module is exempt).

``REP104`` **unregistered engine class** — a class in the engine layers
    (``repro.core``, ``repro.cpu``) that defines ``lower()`` is a
    permutation engine, and every engine must be registered with
    :func:`repro.ir.registry.register_engine` so the selector, the CLI
    ``--engine`` options and plan format v3 can find it.  An engine
    left off the registry silently disappears from ``engine_names()``
    and cannot be reloaded from a saved plan.  Deliberate façades
    (e.g. :class:`repro.core.selector.AutoPermutation`, which wraps a
    registered engine rather than being one) suppress the rule inline.

``REP105`` **raw lower() result executed without the pass pipeline** —
    executors must see *optimized* programs.  An executor call whose
    program argument is a direct ``....lower()`` call (e.g.
    ``ReferenceExecutor().run(engine.lower(), a)``) bypasses the
    default :class:`~repro.passes.framework.PassPipeline`; route
    through ``engine.lower_optimized()`` (or an explicit
    ``pipeline.run(engine.lower())`` — pipeline receivers are the
    blessed consumers of raw lowerings and are exempt).  The rule is
    syntactic: it flags the inline-call pattern, not programs passed
    through variables.

``REP106`` **lock acquisition against the declared hierarchy** — in the
    concurrency layers (``repro.service``, ``repro.planner``) a class's
    lock hierarchy *is* its ``__init__`` declaration order: a method
    may only acquire a later-declared lock while holding an
    earlier-declared one (the server's ``stats()`` nesting ``_cond``
    then ``_stats_lock`` is the canonical shape).  Detected via an AST
    call-graph walk per class: direct ``with self.<lock>`` nesting
    *and* calls — transitively — to methods that acquire, so
    ``submit()`` holding ``_cond`` and calling ``_count()`` (which
    takes ``_stats_lock``) is analysed exactly like inline nesting.
    Re-acquiring a held non-reentrant ``Lock`` (a guaranteed
    self-deadlock) is flagged too; ``RLock``/``Condition`` re-entry is
    legal and exempt.

``REP107`` **unguarded write to lock-shared state** — in the same
    layers, an attribute written under ``with self.<lock>`` anywhere in
    a class is *shared state*; a plain write to it elsewhere without
    the lock is a lost-update bug (``x += 1`` under concurrency drops
    increments).  Constructor writes are initialization and exempt, as
    are writes in methods whose every same-class call site holds a
    lock (the ``# Caller holds the lock`` helper pattern, proved by
    the call-graph walk rather than taken on comment trust).

``REP108`` **warm-path replay of a full KernelProgram where a sealed
    handle may exist** — in the serving layers (``repro.planner``,
    ``repro.service``) a warm apply should route through the sealed
    tier's single proven gather; an executor ``.run(...)`` call whose
    program argument is a ``....program`` attribute replays the whole
    kernel schedule on every request, silently forfeiting the sealed
    fast path.  Functions that consult a ``sealed`` handle (the
    dispatch pattern in ``CompiledPermutation.apply``) are exempt —
    they already route; so are pipeline receivers, mirroring REP105.
    Sites that are genuinely cold-only suppress inline.

Suppression: a source line containing ``staticcheck: ignore`` silences
all rules on that line; ``staticcheck: ignore[REP105]`` silences one.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.errors import StaticCheckError

#: Rule catalogue: name -> one-line description (docs and ``--rule``).
LINT_RULES: dict[str, str] = {
    "REP101": "bank/group index arithmetic outside the machine layer",
    "REP102": "telemetry not using the guarded span()/count() helpers",
    "REP103": "hard-coded narrow integer dtype (overflow pitfall)",
    "REP104": "engine class not registered with @register_engine",
    "REP105": "raw lower() result executed without the pass pipeline",
    "REP106": "lock acquisition against the declared lock hierarchy",
    "REP107": "write to lock-shared state outside its lock block",
    "REP108": "warm-path program replay where a sealed handle may exist",
}

#: Module prefixes the REP106/REP107 concurrency rules cover: the
#: serving core and the planner's cache tiers, where locks guard state
#: shared across server workers.
_CONCURRENCY_LAYERS = ("repro.service", "repro.planner")

#: ``threading`` constructors whose ``self.<attr> = ...`` assignment in
#: ``__init__`` declares a lock; declaration order is the hierarchy.
_LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition"})

#: Module prefixes REP104 treats as engine layers: a class defining
#: ``lower()`` here must carry the ``@register_engine`` decorator.
_ENGINE_LAYERS = ("repro.core", "repro.cpu")

#: Module prefixes where the memory model is *implemented* and REP101
#: does not apply.  ``analysis.figures`` renders the Figure 4 closed
#: form, and ``repro.passes`` computes the costing annotation
#: (predicted stages = rounds x ceil(n / width)); both are deliberately
#: exempt.
_BANK_ARITH_ALLOWED = (
    "repro.machine",
    "repro.core",
    "repro.coloring",
    "repro.staticcheck",
    "repro.analysis.figures",
    "repro.passes",
)

#: Modules allowed to instantiate a Tracer: the telemetry package
#: itself plus the entry points that own one by design.
_TRACER_ALLOWED = (
    "repro.telemetry",
    "repro.cli",
    "repro.report",
    "repro.resilience.engine",
)

#: Width-like identifiers whose `% x` / `// x` is bank/group math.
_WIDTH_NAMES = frozenset({"w", "width"})

#: Narrow integer dtype spellings REP103 refuses.
_NARROW_DTYPES = frozenset(
    {"int8", "int16", "int32", "uint8", "uint16", "uint32"}
)

#: Constructors whose ``dtype=`` keyword REP103 inspects (``np.ones``
#: is deliberately absent: the colouring backends use ``int8`` ones
#: vectors as sparse-matrix payloads, where overflow is impossible).
_DTYPE_CALLS = frozenset(
    {"array", "asarray", "empty", "zeros", "full", "arange"}
)

_IGNORE_RE = re.compile(r"staticcheck:\s*ignore(?:\[([A-Z0-9, ]+)\])?")

_DEFAULT_ROOT = Path(__file__).resolve().parent.parent


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a precise source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} " \
               f"{self.message}"


def module_name_of(path: Path) -> str:
    """Dotted module name of a source file (``repro.machine.dmm``).

    Resolved from the last path component named ``repro``; files
    outside a ``repro`` tree keep their stem as a best-effort name.
    """
    parts = path.resolve().with_suffix("").parts
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        dotted = ".".join(parts[idx:])
    else:
        dotted = path.stem
    if dotted.endswith(".__init__"):
        dotted = dotted[: -len(".__init__")]
    return dotted


def _allowed(module: str, prefixes: Sequence[str]) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in prefixes
    )


def _is_width_name(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _WIDTH_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _WIDTH_NAMES
    return False


def _narrow_dtype_spelling(node: ast.expr) -> str | None:
    """The narrow-dtype name an expression spells, if any."""
    if isinstance(node, ast.Attribute) and node.attr in _NARROW_DTYPES:
        return node.attr
    if isinstance(node, ast.Name) and node.id in _NARROW_DTYPES:
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        if node.value in _NARROW_DTYPES:
            return node.value
    return None


class _Visitor(ast.NodeVisitor):
    """Single-pass visitor running all three rules over one module."""

    def __init__(self, module: str, path: str) -> None:
        self.module = module
        self.path = path
        self.findings: list[LintFinding] = []
        self._compare_depth = 0
        # Enclosing function stack (innermost last) with a memoized
        # does-it-mention-``sealed`` flag per function, for REP108.
        self._function_stack: list[ast.AST] = []
        self._mentions_sealed: dict[ast.AST, bool] = {}

    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            LintFinding(
                rule=rule,
                path=self.path,
                line=int(getattr(node, "lineno", 1)),
                col=int(getattr(node, "col_offset", 0)),
                message=message,
            )
        )

    # -- REP101 --------------------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        # `x % width != 0` is a divisibility check, not bank math.
        self._compare_depth += 1
        try:
            self.generic_visit(node)
        finally:
            self._compare_depth -= 1

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if (
            isinstance(node.op, (ast.Mod, ast.FloorDiv))
            and _is_width_name(node.right)
            and self._compare_depth == 0
            and not _allowed(self.module, _BANK_ARITH_ALLOWED)
        ):
            op = "%" if isinstance(node.op, ast.Mod) else "//"
            self._report(
                "REP101", node,
                f"bank/group arithmetic `... {op} width` belongs in "
                "the machine layer; use DMM.bank() / "
                "UMM.address_group() or move the computation",
            )
        self.generic_visit(node)

    # -- REP102 --------------------------------------------------------

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if (
            node.module is not None
            and node.module.startswith("repro.telemetry.")
            and not _allowed(self.module, ("repro.telemetry",))
        ):
            self._report(
                "REP102", node,
                f"import of telemetry internals ({node.module}); use "
                "the guarded repro.telemetry.span()/count()/gauge() "
                "helpers",
            )
        self.generic_visit(node)

    def _is_tracer_call(self, node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Name):
            return func.id == "Tracer"
        if isinstance(func, ast.Attribute):
            return func.attr == "Tracer"
        return False

    def visit_Call(self, node: ast.Call) -> None:
        if self._is_tracer_call(node) and not _allowed(
            self.module, _TRACER_ALLOWED
        ):
            self._report(
                "REP102", node,
                "library code must not own a Tracer; emit through the "
                "guarded telemetry.span()/count()/gauge() helpers so "
                "the caller controls collection",
            )
        self._check_rep103(node)
        self._check_rep105(node)
        self._check_rep108(node)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function_stack.append(node)
        try:
            self.generic_visit(node)
        finally:
            self._function_stack.pop()

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef
    ) -> None:
        self._function_stack.append(node)
        try:
            self.generic_visit(node)
        finally:
            self._function_stack.pop()

    def visit_Expr(self, node: ast.Expr) -> None:
        value = node.value
        if isinstance(value, ast.Call):
            func = value.func
            name = (
                func.attr if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name) else None
            )
            if name == "span":
                self._report(
                    "REP102", node,
                    "span created but never entered — it records "
                    "nothing; use `with telemetry.span(...):`",
                )
        self.generic_visit(node)

    # -- REP104 --------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if (
            _allowed(self.module, _ENGINE_LAYERS)
            and any(
                isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                and item.name == "lower"
                for item in node.body
            )
            and not any(
                self._is_register_engine(dec) for dec in node.decorator_list
            )
        ):
            self._report(
                "REP104", node,
                f"engine class {node.name} defines lower() but is not "
                "registered; decorate it with @register_engine(...) so "
                "the selector, the CLI and plan files can find it",
            )
        self.generic_visit(node)

    @staticmethod
    def _is_register_engine(node: ast.expr) -> bool:
        func = node.func if isinstance(node, ast.Call) else node
        if isinstance(func, ast.Name):
            return func.id == "register_engine"
        if isinstance(func, ast.Attribute):
            return func.attr == "register_engine"
        return False

    # -- REP103 --------------------------------------------------------

    def _check_rep103(self, node: ast.Call) -> None:
        if _allowed(self.module, ("repro.util.arrays",)):
            return
        func = node.func
        spelling: str | None = None
        if isinstance(func, ast.Attribute) and func.attr == "astype":
            if node.args:
                spelling = _narrow_dtype_spelling(node.args[0])
        elif isinstance(func, ast.Attribute) and func.attr in _DTYPE_CALLS:
            for keyword in node.keywords:
                if keyword.arg == "dtype":
                    spelling = _narrow_dtype_spelling(keyword.value)
        if spelling is not None:
            self._report(
                "REP103", node,
                f"hard-coded narrow dtype np.{spelling}; derive it "
                "with repro.util.arrays.smallest_index_dtype to avoid "
                "silent overflow when sizes grow",
            )

    # -- REP105 --------------------------------------------------------

    #: Executor entry points whose program argument REP105 inspects.
    _EXECUTOR_METHODS = frozenset({"run", "simulate"})

    def _check_rep105(self, node: ast.Call) -> None:
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in self._EXECUTOR_METHODS
        ):
            return
        if self._is_pipeline_receiver(func.value):
            # `pipeline.run(engine.lower())` IS the optimization step.
            return
        for arg in node.args:
            if (
                isinstance(arg, ast.Call)
                and isinstance(arg.func, ast.Attribute)
                and arg.func.attr == "lower"
            ):
                self._report(
                    "REP105", node,
                    "raw lower() result passed straight to an "
                    "executor, bypassing the default PassPipeline; "
                    "use engine.lower_optimized() (or run the "
                    "program through a pipeline first)",
                )
                return

    # -- REP108 --------------------------------------------------------

    #: Module prefixes REP108 covers: the layers that serve warm
    #: requests and therefore should prefer the sealed tier.
    _SEALED_LAYERS = ("repro.planner", "repro.service")

    def _enclosing_mentions_sealed(self) -> bool:
        """Whether any enclosing function's body mentions ``sealed``
        (an attribute, name or call containing the word) — the
        dispatch pattern that checks for a sealed handle before
        replaying the program."""
        for fn in reversed(self._function_stack):
            flag = self._mentions_sealed.get(fn)
            if flag is None:
                flag = any(
                    (
                        isinstance(sub, ast.Attribute)
                        and "sealed" in sub.attr.lower()
                    )
                    or (
                        isinstance(sub, ast.Name)
                        and "sealed" in sub.id.lower()
                    )
                    for sub in ast.walk(fn)
                )
                self._mentions_sealed[fn] = flag
            if flag:
                return True
        return False

    def _check_rep108(self, node: ast.Call) -> None:
        if not _allowed(self.module, self._SEALED_LAYERS):
            return
        func = node.func
        if not (
            isinstance(func, ast.Attribute) and func.attr == "run"
        ):
            return
        if self._is_pipeline_receiver(func.value):
            return
        replayed = next(
            (
                arg
                for arg in node.args
                if isinstance(arg, ast.Attribute)
                and arg.attr == "program"
            ),
            None,
        )
        if replayed is None:
            return
        if self._enclosing_mentions_sealed():
            # The function dispatches on a sealed handle already; the
            # program replay is its (correct) unsealed fallback.
            return
        self._report(
            "REP108", node,
            "warm-path executor replay of a full `.program` where a "
            "sealed handle may exist; dispatch through the sealed "
            "tier first (CompiledPermutation.apply does), or "
            "suppress if this site is cold-only",
        )

    @staticmethod
    def _is_pipeline_receiver(node: ast.expr) -> bool:
        """True when the call receiver is pipeline-like by name
        (``pipeline.run(...)``, ``self.pipeline.run(...)``,
        ``default_pipeline().run(...)``)."""
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            else:
                return False
        else:
            return False
        return "pipeline" in name.lower()


# ---------------------------------------------------------------------
# REP106 / REP107: per-class concurrency analysis
# ---------------------------------------------------------------------


def _self_attr(node: ast.expr) -> str | None:
    """``attr`` when ``node`` is ``self.<attr>``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _lock_declarations(cls: ast.ClassDef) -> dict[str, tuple[int, str]]:
    """``{attr: (rank, kind)}`` for the locks ``__init__`` declares.

    Rank is declaration order — the class's lock hierarchy.  ``kind``
    is the ``threading`` factory name (``Lock`` is non-reentrant,
    ``RLock``/``Condition`` re-enter legally).
    """
    init = next(
        (
            item
            for item in cls.body
            if isinstance(item, ast.FunctionDef)
            and item.name == "__init__"
        ),
        None,
    )
    if init is None:
        return {}
    locks: dict[str, tuple[int, str]] = {}
    for node in ast.walk(init):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        func = value.func
        factory = (
            func.attr if isinstance(func, ast.Attribute)
            else func.id if isinstance(func, ast.Name) else None
        )
        if factory not in _LOCK_FACTORIES:
            continue
        for target in node.targets:
            attr = _self_attr(target)
            if attr is not None and attr not in locks:
                locks[attr] = (len(locks), factory)
    return locks


@dataclass
class _MethodFacts:
    """What one method does with locks, state and peer methods.

    Every entry carries the tuple of declared locks lexically held at
    that point (outermost first).
    """

    acquisitions: list[tuple[str, tuple[str, ...], ast.AST]]
    calls: list[tuple[str, tuple[str, ...], ast.AST]]
    writes: list[tuple[str, tuple[str, ...], ast.AST]]


def _collect_method_facts(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    locks: dict[str, tuple[int, str]],
) -> _MethodFacts:
    facts = _MethodFacts(acquisitions=[], calls=[], writes=[])

    def write_target(target: ast.expr) -> str | None:
        attr = _self_attr(target)
        if attr is not None:
            return attr
        if isinstance(target, ast.Subscript):
            # `self.d[k] = v` mutates self.d just like `self.x = v`.
            return _self_attr(target.value)
        return None

    def visit(node: ast.AST, held: tuple[str, ...]) -> None:
        if (
            isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            )
            and node is not fn
        ):
            # Nested scopes run at another time, under another stack;
            # the lexically-held set does not apply to them.
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = held
            for item in node.items:
                visit(item.context_expr, inner)
                attr = _self_attr(item.context_expr)
                if attr in locks:
                    facts.acquisitions.append((attr, inner, node))
                    inner = inner + (attr,)
            for stmt in node.body:
                visit(stmt, inner)
            return
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                attr = _self_attr(func)
                if attr is not None:
                    facts.calls.append((attr, held, node))
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                attr = write_target(target)
                if attr is not None:
                    facts.writes.append((attr, held, node))
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            attr = write_target(node.target)
            if attr is not None:
                facts.writes.append((attr, held, node))
        for child in ast.iter_child_nodes(node):
            visit(child, held)

    visit(fn, ())
    return facts


def _transitive_locks(
    methods: dict[str, _MethodFacts],
) -> dict[str, set[str]]:
    """Fixpoint of "locks method m may acquire", through self-calls."""
    acquired = {
        name: {lock for lock, _held, _node in facts.acquisitions}
        for name, facts in methods.items()
    }
    changed = True
    while changed:
        changed = False
        for name, facts in methods.items():
            for callee, _held, _node in facts.calls:
                extra = acquired.get(callee, set()) - acquired[name]
                if extra:
                    acquired[name] |= extra
                    changed = True
    return acquired


def _guarded_methods(methods: dict[str, _MethodFacts]) -> set[str]:
    """Methods whose *every* same-class call site holds a lock.

    Greatest fixpoint: start from every method that has at least one
    internal call site, then drop any with an unguarded call site in a
    non-guarded method.  Methods callable from outside the class
    (no internal call sites) are never guarded.
    """
    callsites: dict[str, list[tuple[str, tuple[str, ...]]]] = {}
    for caller, facts in methods.items():
        for callee, held, _node in facts.calls:
            if callee in methods:
                callsites.setdefault(callee, []).append((caller, held))
    guarded = {name for name in methods if callsites.get(name)}
    changed = True
    while changed:
        changed = False
        for name in list(guarded):
            for caller, held in callsites[name]:
                if not held and caller not in guarded:
                    guarded.discard(name)
                    changed = True
                    break
    return guarded


class _ConcurrencyChecker:
    """Runs REP106/REP107 over one lock-declaring class."""

    def __init__(
        self,
        cls: ast.ClassDef,
        locks: dict[str, tuple[int, str]],
        path: str,
    ) -> None:
        self.cls = cls
        self.locks = locks
        self.path = path
        self.findings: list[LintFinding] = []
        self.methods = {
            item.name: _collect_method_facts(item, locks)
            for item in cls.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        self.transitive = _transitive_locks(self.methods)
        self.guarded = _guarded_methods(self.methods)

    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            LintFinding(
                rule=rule,
                path=self.path,
                line=int(getattr(node, "lineno", 1)),
                col=int(getattr(node, "col_offset", 0)),
                message=f"[{self.cls.name}] {message}",
            )
        )

    def _hierarchy(self) -> str:
        ordered = sorted(self.locks, key=lambda a: self.locks[a][0])
        return " -> ".join(f"self.{attr}" for attr in ordered)

    # -- REP106 --------------------------------------------------------

    def _check_order(
        self,
        acquires: str,
        held: tuple[str, ...],
        node: ast.AST,
        via: str | None,
    ) -> None:
        rank, kind = self.locks[acquires]
        route = f" (via self.{via}())" if via else ""
        for outer in held:
            outer_rank, _outer_kind = self.locks[outer]
            if acquires == outer:
                if kind == "Lock":
                    self._report(
                        "REP106", node,
                        f"re-acquires non-reentrant self.{acquires} "
                        f"while holding it{route} — guaranteed "
                        "self-deadlock",
                    )
                continue
            if rank < outer_rank:
                self._report(
                    "REP106", node,
                    f"acquires self.{acquires} while holding "
                    f"self.{outer}{route}, against the declared lock "
                    f"hierarchy {self._hierarchy()} (declaration "
                    "order in __init__)",
                )

    def check_rep106(self) -> None:
        for facts in self.methods.values():
            for lock, held, node in facts.acquisitions:
                if held:
                    self._check_order(lock, held, node, via=None)
            for callee, held, node in facts.calls:
                if not held:
                    continue
                for lock in sorted(self.transitive.get(callee, ())):
                    self._check_order(lock, held, node, via=callee)

    # -- REP107 --------------------------------------------------------

    def check_rep107(self) -> None:
        # Shared state: attributes with at least one lock-guarded
        # write — lexically, via a fully call-site-guarded method, or
        # in a method that is *sometimes* entered under a lock (one
        # locked call site makes every write in it lock-shared).
        sometimes_locked = {
            callee
            for facts in self.methods.values()
            for callee, held, _node in facts.calls
            if held and callee in self.methods
        }
        guarding: dict[str, set[str]] = {}
        for name, facts in self.methods.items():
            if name == "__init__":
                continue
            for attr, held, _node in facts.writes:
                if attr in self.locks:
                    continue
                if held:
                    guarding.setdefault(attr, set()).add(held[-1])
                elif name in self.guarded or name in sometimes_locked:
                    guarding.setdefault(attr, set())
        for name, facts in self.methods.items():
            if name == "__init__" or name in self.guarded:
                continue
            for attr, held, node in facts.writes:
                if attr not in guarding or held:
                    continue
                locks = sorted(guarding[attr]) or ["<lock>"]
                self._report(
                    "REP107", node,
                    f"write to shared attribute self.{attr} outside a "
                    f"`with self.{locks[0]}` block; other writes are "
                    "lock-guarded, so this one races them",
                )


def _concurrency_findings(
    tree: ast.Module, module: str, path: str
) -> list[LintFinding]:
    """REP106/REP107 over every lock-declaring class in a module."""
    if not _allowed(module, _CONCURRENCY_LAYERS):
        return []
    findings: list[LintFinding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        locks = _lock_declarations(node)
        if not locks:
            continue
        checker = _ConcurrencyChecker(node, locks, path)
        checker.check_rep106()
        checker.check_rep107()
        findings.extend(checker.findings)
    return findings


def _suppressed(source_lines: list[str], finding: LintFinding) -> bool:
    if not 1 <= finding.line <= len(source_lines):
        return False
    match = _IGNORE_RE.search(source_lines[finding.line - 1])
    if match is None:
        return False
    rules = match.group(1)
    if rules is None:
        return True
    return finding.rule in {r.strip() for r in rules.split(",")}


def lint_source(
    source: str, path: str, module: str | None = None,
    rules: Sequence[str] | None = None,
) -> list[LintFinding]:
    """Lint one module's source text (unit-testable entry point)."""
    if module is None:
        module = module_name_of(Path(path))
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise StaticCheckError(
            f"{path}: cannot lint, file does not parse: {exc}"
        ) from exc
    visitor = _Visitor(module=module, path=path)
    visitor.visit(tree)
    collected = visitor.findings + _concurrency_findings(
        tree, module, path
    )
    lines = source.splitlines()
    selected = set(rules) if rules is not None else None
    findings = [
        finding
        for finding in collected
        if (selected is None or finding.rule in selected)
        and not _suppressed(lines, finding)
    ]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def iter_source_files(
    paths: Sequence[str | Path] | None = None,
) -> Iterator[Path]:
    """The Python files a lint run covers (defaults to the installed
    ``repro`` package tree)."""
    roots = (
        [Path(p) for p in paths] if paths else [_DEFAULT_ROOT]
    )
    for root in roots:
        if root.is_file():
            yield root
        elif root.is_dir():
            yield from sorted(root.rglob("*.py"))
        else:
            raise StaticCheckError(f"lint path does not exist: {root}")


def run_lint(
    paths: Sequence[str | Path] | None = None,
    rules: Sequence[str] | None = None,
) -> list[LintFinding]:
    """Run the rule catalogue over ``paths`` (default: the ``repro``
    package) and return all surviving findings, sorted."""
    if rules is not None:
        unknown = set(rules) - set(LINT_RULES)
        if unknown:
            raise StaticCheckError(
                f"unknown lint rule(s) {sorted(unknown)}; available: "
                f"{sorted(LINT_RULES)}"
            )
    findings: list[LintFinding] = []
    for path in iter_source_files(paths):
        findings.extend(
            lint_source(
                path.read_text(encoding="utf-8"), str(path), rules=rules
            )
        )
    return findings
