"""Symbolic access-map extraction from kernel programs.

Every address a *regular* (scheduled) kernel touches is a pure function
of the plan arrays — the ``s``/``t`` schedules and the transpose's
precomputed address streams.  This module derives those address streams
*without executing anything*: no payload array is allocated, no traced
gather/scatter runs.  :func:`program_rounds` walks a lowered
:class:`~repro.ir.program.KernelProgram` op by op, so the certifier
works from the same IR the executors run; the differential test suite
pins the result against the address streams the real executors emit
through :mod:`repro.machine.memory`.

The round order mirrors the executors exactly:

* row-wise kernel (:meth:`repro.core.rowwise.RowwiseSchedule.apply`):
  read ``a``, read ``s``, write ``x[s]``, read ``t``, read ``x[tile]``,
  write ``y[t]``, read ``y[tile]``, write ``b`` — 8 rounds;
* transpose kernel (:meth:`repro.core.transpose.TiledTranspose.apply`):
  read ``a``, write ``tile`` (diagonal slots), read ``tile``, write
  ``b`` — 4 rounds;
* gather-scatter kernel
  (:meth:`repro.core.dmm_permutation.DMMScheduledPermutation.apply`):
  read ``s``, read ``t``, read ``a[s]``, write ``b[t]`` — 4 shared
  rounds;
* the paper's five-kernel program: row-wise, transpose, row-wise,
  transpose, row-wise = 8 + 4 + 8 + 4 + 8 = 32 rounds.

Irregular ops (casual reads/writes, unscheduled scatters) have no
conflict-freedom claim to certify, so :func:`program_rounds` refuses
them with :class:`~repro.errors.StaticCheckError` rather than guessing.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import StaticCheckError
from repro.ir.ops import GatherScatter, Pad, RowwiseScatter, Slice, Transpose
from repro.machine.requests import AccessRound

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.rowwise import RowwiseSchedule
    from repro.core.scheduled import ScheduledPermutation
    from repro.core.transpose import TiledTranspose
    from repro.ir.program import KernelProgram

#: (space, kind, array, addresses, block_size)
_Access = tuple[str, str, str, np.ndarray, "int | None"]


@dataclass(frozen=True)
class StaticRound:
    """One access round derived symbolically from plan arrays.

    ``addresses`` holds one address per thread (block-local for shared
    rounds, exactly the convention of
    :class:`repro.machine.requests.AccessRound`); ``index`` is the
    round's position in the full 32-round program.
    """

    kernel: str
    index: int
    space: str
    kind: str
    array: str
    addresses: np.ndarray
    block_size: int | None = None

    @property
    def num_threads(self) -> int:
        return int(self.addresses.shape[0])

    def label(self) -> str:
        """Identifier like ``"step1.rowwise[2] shared write x"``."""
        return f"{self.kernel}[{self.index}] {self.space} {self.kind} " \
               f"{self.array}"

    def to_access_round(self) -> AccessRound:
        """The equivalent dynamic :class:`AccessRound` (tests, races)."""
        return AccessRound(
            self.space, self.kind, self.addresses, self.array,  # type: ignore[arg-type]
            block_size=self.block_size,
        )


def _coalesced(n: int) -> np.ndarray:
    return np.arange(n, dtype=np.int64)


def _rowwise_accesses(schedule: "RowwiseSchedule") -> Iterator[_Access]:
    """The 8 address streams of one row-wise kernel, in executor order."""
    rows, m = int(schedule.rows), int(schedule.m)
    n = rows * m
    idx = _coalesced(n)
    s_flat = np.asarray(schedule.s, dtype=np.int64).reshape(-1)
    t_flat = np.asarray(schedule.t, dtype=np.int64).reshape(-1)
    tile = np.broadcast_to(
        np.arange(m, dtype=np.int64), (rows, m)
    ).reshape(-1)
    yield ("global", "read", "a", idx, None)
    yield ("global", "read", "s", idx, None)
    yield ("shared", "write", "x", s_flat, m)
    yield ("global", "read", "t", idx, None)
    yield ("shared", "read", "x", tile, m)
    yield ("shared", "write", "y", t_flat, m)
    yield ("shared", "read", "y", tile, m)
    yield ("global", "write", "b", idx, None)


def _transpose_accesses(transpose: "TiledTranspose") -> Iterator[_Access]:
    """The 4 address streams of one tiled-transpose kernel."""
    block_threads = int(transpose.block_threads)
    yield ("global", "read", "a",
           np.asarray(transpose.read_addr, dtype=np.int64), None)
    yield ("shared", "write", "tile",
           np.asarray(transpose.shared_write_addr, dtype=np.int64)
           .reshape(-1), block_threads)
    yield ("shared", "read", "tile",
           np.asarray(transpose.shared_read_addr, dtype=np.int64)
           .reshape(-1), block_threads)
    yield ("global", "write", "b",
           np.asarray(transpose.write_addr, dtype=np.int64), None)


def _materialise(
    kernel: str, accesses: Iterator[_Access], start: int
) -> list[StaticRound]:
    rounds = []
    for offset, (space, kind, array, addresses, block_size) in enumerate(
        accesses
    ):
        rounds.append(
            StaticRound(
                kernel=kernel,
                index=start + offset,
                space=space,
                kind=kind,
                array=array,
                addresses=addresses,
                block_size=block_size,
            )
        )
    return rounds


def rowwise_rounds(
    schedule: "RowwiseSchedule", kernel: str = "rowwise", start: int = 0
) -> list[StaticRound]:
    """Static rounds of a single row-wise schedule."""
    return _materialise(kernel, _rowwise_accesses(schedule), start)


def transpose_rounds(
    transpose: "TiledTranspose", kernel: str = "transpose", start: int = 0
) -> list[StaticRound]:
    """Static rounds of a single tiled transpose."""
    return _materialise(kernel, _transpose_accesses(transpose), start)


def _gather_scatter_accesses(op: GatherScatter) -> Iterator[_Access]:
    """The 4 shared address streams of the single-DMM kernel."""
    n = int(op.s.shape[0])
    idx = _coalesced(n)
    yield ("shared", "read", "s", idx, n)
    yield ("shared", "read", "t", idx, n)
    yield ("shared", "read", "a",
           np.asarray(op.s, dtype=np.int64), n)
    yield ("shared", "write", "b",
           np.asarray(op.t, dtype=np.int64), n)


def _op_accesses(op) -> Iterator[_Access]:
    """The address streams of one regular IR op, in executor order."""
    if isinstance(op, RowwiseScatter) and op.regular:
        from repro.core.rowwise import RowwiseSchedule

        schedule = RowwiseSchedule(
            gamma=op.gamma, s=op.s, t=op.t, width=op.width
        )
        return _rowwise_accesses(schedule)
    if isinstance(op, Transpose) and op.tiled:
        from repro.core.transpose import TiledTranspose

        return _transpose_accesses(
            TiledTranspose(op.m, op.width, diagonal=op.diagonal)
        )
    if isinstance(op, GatherScatter):
        return _gather_scatter_accesses(op)
    raise StaticCheckError(
        f"op {op.label!r} (kind {op.kind!r}) is not statically "
        "certifiable: only scheduled row-wise, tiled transpose and "
        "gather-scatter kernels have conflict-freedom claims to prove"
    )


def program_rounds(program: "KernelProgram") -> tuple[StaticRound, ...]:
    """Derive the access rounds of a lowered kernel program.

    Walks ``program.ops`` in order; each regular op contributes its
    address streams under its own label (e.g. ``step1.rowwise``), with
    round indices running consecutively across the whole program.
    ``pad``/``slice`` ops are zero-cost resizing and contribute no
    rounds; irregular ops raise :class:`StaticCheckError`.
    """
    rounds: list[StaticRound] = []
    for op in program.ops:
        if isinstance(op, (Pad, Slice)):
            continue
        rounds.extend(
            _materialise(op.label, _op_accesses(op), start=len(rounds))
        )
    return tuple(rounds)


def plan_rounds(plan: "ScheduledPermutation") -> tuple[StaticRound, ...]:
    """Derive all 32 rounds of a planned scheduled permutation.

    Lowers the plan to its kernel program and enumerates rounds from
    the IR; kernels appear in execution order (``step1.rowwise``,
    ``step2.transpose-in``, ``step2.rowwise``, ``step2.transpose-out``,
    ``step3.rowwise``) and round indices run 0..31 across the program.
    """
    rounds = program_rounds(plan.lower())
    if len(rounds) != 32:
        raise StaticCheckError(
            f"expected 32 static rounds, derived {len(rounds)} — the "
            "plan's kernel structure does not match the paper's program"
        )
    return rounds
