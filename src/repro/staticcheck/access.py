"""Symbolic access-map extraction from saved plans.

The scheduled permutation's five kernels move data through exactly 32
memory-access rounds, and every address in them is a pure function of
the plan arrays — the ``s``/``t`` schedules and the transpose's
precomputed address streams.  This module derives those 32 address
streams *without executing anything*: no payload array is allocated, no
traced gather/scatter runs.  The certifier analyses the result; the
differential test suite pins it against the address streams the real
executors emit through :mod:`repro.machine.memory`.

The round order mirrors the executors exactly:

* row-wise kernel (:meth:`repro.core.rowwise.RowwiseSchedule.apply`):
  read ``a``, read ``s``, write ``x[s]``, read ``t``, read ``x[tile]``,
  write ``y[t]``, read ``y[tile]``, write ``b`` — 8 rounds;
* transpose kernel (:meth:`repro.core.transpose.TiledTranspose.apply`):
  read ``a``, write ``tile`` (diagonal slots), read ``tile``, write
  ``b`` — 4 rounds;
* program: row-wise, transpose, row-wise, transpose, row-wise
  = 8 + 4 + 8 + 4 + 8 = 32 rounds.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import StaticCheckError
from repro.machine.requests import AccessRound

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.rowwise import RowwiseSchedule
    from repro.core.scheduled import ScheduledPermutation
    from repro.core.transpose import TiledTranspose

#: (space, kind, array, addresses, block_size)
_Access = tuple[str, str, str, np.ndarray, "int | None"]


@dataclass(frozen=True)
class StaticRound:
    """One access round derived symbolically from plan arrays.

    ``addresses`` holds one address per thread (block-local for shared
    rounds, exactly the convention of
    :class:`repro.machine.requests.AccessRound`); ``index`` is the
    round's position in the full 32-round program.
    """

    kernel: str
    index: int
    space: str
    kind: str
    array: str
    addresses: np.ndarray
    block_size: int | None = None

    @property
    def num_threads(self) -> int:
        return int(self.addresses.shape[0])

    def label(self) -> str:
        """Identifier like ``"step1.rowwise[2] shared write x"``."""
        return f"{self.kernel}[{self.index}] {self.space} {self.kind} " \
               f"{self.array}"

    def to_access_round(self) -> AccessRound:
        """The equivalent dynamic :class:`AccessRound` (tests, races)."""
        return AccessRound(
            self.space, self.kind, self.addresses, self.array,  # type: ignore[arg-type]
            block_size=self.block_size,
        )


def _coalesced(n: int) -> np.ndarray:
    return np.arange(n, dtype=np.int64)


def _rowwise_accesses(schedule: "RowwiseSchedule") -> Iterator[_Access]:
    """The 8 address streams of one row-wise kernel, in executor order."""
    rows, m = int(schedule.rows), int(schedule.m)
    n = rows * m
    idx = _coalesced(n)
    s_flat = np.asarray(schedule.s, dtype=np.int64).reshape(-1)
    t_flat = np.asarray(schedule.t, dtype=np.int64).reshape(-1)
    tile = np.broadcast_to(
        np.arange(m, dtype=np.int64), (rows, m)
    ).reshape(-1)
    yield ("global", "read", "a", idx, None)
    yield ("global", "read", "s", idx, None)
    yield ("shared", "write", "x", s_flat, m)
    yield ("global", "read", "t", idx, None)
    yield ("shared", "read", "x", tile, m)
    yield ("shared", "write", "y", t_flat, m)
    yield ("shared", "read", "y", tile, m)
    yield ("global", "write", "b", idx, None)


def _transpose_accesses(transpose: "TiledTranspose") -> Iterator[_Access]:
    """The 4 address streams of one tiled-transpose kernel."""
    block_threads = int(transpose.block_threads)
    yield ("global", "read", "a",
           np.asarray(transpose.read_addr, dtype=np.int64), None)
    yield ("shared", "write", "tile",
           np.asarray(transpose.shared_write_addr, dtype=np.int64)
           .reshape(-1), block_threads)
    yield ("shared", "read", "tile",
           np.asarray(transpose.shared_read_addr, dtype=np.int64)
           .reshape(-1), block_threads)
    yield ("global", "write", "b",
           np.asarray(transpose.write_addr, dtype=np.int64), None)


def _materialise(
    kernel: str, accesses: Iterator[_Access], start: int
) -> list[StaticRound]:
    rounds = []
    for offset, (space, kind, array, addresses, block_size) in enumerate(
        accesses
    ):
        rounds.append(
            StaticRound(
                kernel=kernel,
                index=start + offset,
                space=space,
                kind=kind,
                array=array,
                addresses=addresses,
                block_size=block_size,
            )
        )
    return rounds


def rowwise_rounds(
    schedule: "RowwiseSchedule", kernel: str = "rowwise", start: int = 0
) -> list[StaticRound]:
    """Static rounds of a single row-wise schedule."""
    return _materialise(kernel, _rowwise_accesses(schedule), start)


def transpose_rounds(
    transpose: "TiledTranspose", kernel: str = "transpose", start: int = 0
) -> list[StaticRound]:
    """Static rounds of a single tiled transpose."""
    return _materialise(kernel, _transpose_accesses(transpose), start)


def plan_rounds(plan: "ScheduledPermutation") -> tuple[StaticRound, ...]:
    """Derive all 32 rounds of a planned scheduled permutation.

    Kernels appear in execution order (``step1.rowwise``,
    ``step2.transpose-in``, ``step2.rowwise``, ``step2.transpose-out``,
    ``step3.rowwise``); round indices run 0..31 across the program.
    """
    kernels: list[tuple[str, Iterator[_Access]]] = [
        ("step1.rowwise", _rowwise_accesses(plan.step1)),
        ("step2.transpose-in", _transpose_accesses(plan.step2.transpose)),
        ("step2.rowwise", _rowwise_accesses(plan.step2.rowwise)),
        ("step2.transpose-out", _transpose_accesses(plan.step2.transpose)),
        ("step3.rowwise", _rowwise_accesses(plan.step3)),
    ]
    rounds: list[StaticRound] = []
    for kernel, accesses in kernels:
        rounds.extend(_materialise(kernel, accesses, start=len(rounds)))
    if len(rounds) != 32:
        raise StaticCheckError(
            f"expected 32 static rounds, derived {len(rounds)} — the "
            "plan's kernel structure does not match the paper's program"
        )
    return tuple(rounds)
