"""Static analysis for scheduled-permutation plans.

Four layers, all pure functions over arrays and source text — nothing
here runs the simulator:

* :mod:`repro.staticcheck.certifier` — proves the memory-access rounds
  of a lowered kernel program (the scheduled plan's 32, via
  :func:`certify_plan`, or any regular program's, via
  :func:`certify_program`) bank-conflict-free (DMM) and fully coalesced
  (UMM) from the schedule arrays alone, emitting a :class:`Certificate`
  or a precise :class:`Counterexample`;
* :mod:`repro.staticcheck.semantics` — abstractly interprets any
  kernel program into its denoted index map (:func:`denote_program`),
  proves it a bijection, and performs translation validation of the
  pass pipeline (:func:`validate_translation`), emitting a
  :class:`SemanticCertificate`;
* :mod:`repro.staticcheck.races` — write-write / read-write race
  detection over access-round traces, wired into the emulators behind
  ``detect_races=True``;
* :mod:`repro.staticcheck.lint` — project-specific AST rules
  (``python -m repro check``), including the REP106/REP107
  concurrency rules over the serving core.
"""

from __future__ import annotations

from repro.staticcheck.access import (
    StaticRound,
    plan_rounds,
    program_rounds,
    rowwise_rounds,
    transpose_rounds,
)
from repro.staticcheck.certifier import (
    CERTIFICATE_VERSION,
    Certificate,
    Counterexample,
    RoundVerdict,
    analyze_round,
    certify_plan,
    certify_program,
    certify_rounds,
    global_group_counts,
    shared_bank_multiplicities,
)
from repro.staticcheck.lint import (
    LINT_RULES,
    LintFinding,
    lint_source,
    run_lint,
)
from repro.staticcheck.races import (
    RaceFinding,
    check_races,
    detect_races,
    find_cross_round_hazards,
    find_intra_round_races,
)
from repro.staticcheck.semantics import (
    SEMANTIC_CERTIFICATE_VERSION,
    OpDenotation,
    ProgramDenotation,
    SemanticCertificate,
    SemanticCounterexample,
    denotation_digest,
    denote_program,
    prove_bijection,
    validate_translation,
)

__all__ = [
    "CERTIFICATE_VERSION",
    "Certificate",
    "Counterexample",
    "LINT_RULES",
    "LintFinding",
    "OpDenotation",
    "ProgramDenotation",
    "RaceFinding",
    "RoundVerdict",
    "SEMANTIC_CERTIFICATE_VERSION",
    "SemanticCertificate",
    "SemanticCounterexample",
    "StaticRound",
    "analyze_round",
    "certify_plan",
    "certify_program",
    "certify_rounds",
    "check_races",
    "denotation_digest",
    "denote_program",
    "detect_races",
    "find_cross_round_hazards",
    "find_intra_round_races",
    "global_group_counts",
    "lint_source",
    "prove_bijection",
    "plan_rounds",
    "program_rounds",
    "rowwise_rounds",
    "run_lint",
    "shared_bank_multiplicities",
    "transpose_rounds",
    "validate_translation",
]
