"""Offline permutation inside one DMM (the paper's predecessor result).

Before scaling to the HMM, the authors solved offline permutation for
an array resident in a *single* DMM's shared memory (refs [8], [9] of
the paper; Section I summarises: the conventional algorithm takes 246 ns
and the conflict-free one 165 ns for 1024 floats on one GTX-680 SM —
1.5x, but capped at 4096 floats by the 48 KB shared memory).  This
module reproduces that system:

* :class:`DMMConventionalPermutation` — ``b[p[i]] = a[i]`` directly:
  one conflict-free read of ``a``, one of ``p``, and one *casual* write
  whose per-warp cost is the maximum bank multiplicity — the **bank
  distribution** ``B_w(P)`` (the DMM twin of the UMM's ``D_w``);
* :class:`DMMScheduledPermutation` — the conflict-free algorithm: a
  König colouring of the degree-``n/w`` bank multigraph
  (``i mod w -> p[i] mod w``) yields a thread schedule ``s`` (warp ``r``
  = the ``w`` elements of colour ``r``, lane = source bank) and
  ``t = p[s]``; then thread ``i`` performs ``b[t[i]] <- a[s[i]]`` —
  **4 conflict-free rounds** (read ``s``, read ``t``, read ``a[s]``,
  write ``b[t]``) for a total of ``4n/w`` time units against the
  conventional ``2n/w + B_w(P)`` (with ``B_w`` up to ``n``).

The same crossover logic as the HMM result applies one level down:
``B_w(identity) = n/w`` (conventional wins), ``B_w`` of a bank-worst
permutation is ``n`` (conflict-free wins ~``(2 + w)/4`` ×), and random
permutations sit at the expected max-load of ``w`` balls in ``w`` bins
(~3.4 at ``w = 32``), giving the modest but real ~1.3x the paper's
165 ns vs 246 ns reflects.
"""

from __future__ import annotations

import numpy as np

from repro.coloring import RegularBipartiteMultigraph, edge_coloring
from repro.coloring.verify import verify_edge_coloring
from repro.errors import SchedulingError, SizeError, ValidationError
from repro.ir.engine import EngineBase
from repro.ir.ops import CasualWrite, GatherScatter
from repro.ir.program import KernelProgram
from repro.ir.registry import register_engine
from repro.machine.cost_model import round_time, shared_warp_stages
from repro.machine.dmm import DMM
from repro.machine.memory import NullRecorder, TraceRecorder
from repro.machine.requests import AccessRound, coalesced_addresses
from repro.util.arrays import smallest_index_dtype
from repro.util.validation import check_permutation


def bank_distribution(p: np.ndarray, width: int) -> int:
    """The DMM analogue of ``D_w``: total bank-conflict stages of the
    casual write ``b[p[i]] <- a[i]``.

    Sum over warps of the maximum number of destinations landing in one
    bank; ranges from ``n/w`` (conflict-free) to ``n`` (every warp
    fully serialised into one bank).
    """
    p = check_permutation(p)
    if width < 1:
        raise SizeError(f"width must be >= 1, got {width}")
    if p.shape[0] == 0:
        return 0
    if p.shape[0] % width != 0:
        raise SizeError(
            f"n = {p.shape[0]} must be a multiple of the width {width}"
        )
    return int(shared_warp_stages(p, width).sum())


def worst_case_bank_permutation(n: int, width: int) -> np.ndarray:
    """A permutation with maximal bank distribution ``B_w = n``.

    Sends warp ``k`` entirely into bank ``k mod w``:
    ``p[k*w + j] = j*w + (k mod w)`` rearranged within warps — every
    warp's ``w`` destinations share one bank.
    """
    if width < 1 or n % (width * width) != 0:
        raise SizeError(
            f"n = {n} must be a multiple of w² = {width * width}"
        )
    i = np.arange(n, dtype=np.int64)
    warp, lane = i // width, i % width
    # Destination bank = warp mod w; distinct cells via the lane and
    # the warp's "super-row".
    return (warp // width * width + lane) * width + warp % width


@register_engine("dmm-conventional")
class DMMConventionalPermutation(EngineBase):
    """Conventional permutation in one DMM: 3 rounds, one casual."""

    def __init__(self, p: np.ndarray, width: int = 32) -> None:
        p = check_permutation(p)
        if width < 1:
            raise SizeError(f"width must be >= 1, got {width}")
        if p.shape[0] % width != 0:
            raise SizeError(
                f"n = {p.shape[0]} must be a multiple of the width {width}"
            )
        self.p = p.astype(smallest_index_dtype(max(p.shape[0] - 1, 0)))
        self.width = width
        self.n = int(p.shape[0])

    @classmethod
    def plan(
        cls, p: np.ndarray, width: int = 32, backend: str = "auto"
    ) -> "DMMConventionalPermutation":
        """No planning beyond validation; ``backend`` is ignored."""
        del backend
        return cls(p, width=width)

    def apply(
        self, a: np.ndarray, recorder: TraceRecorder | None = None
    ) -> np.ndarray:
        """Permute ``a`` (pure computation; ``recorder`` accepted for
        protocol uniformity — round recording goes via ``simulate``)."""
        del recorder
        a = np.asarray(a)
        if a.shape != (self.n,):
            raise SizeError(f"a must have shape ({self.n},), got {a.shape}")
        b = np.empty_like(a)
        b[self.p] = a
        return b

    def lower(self) -> KernelProgram:
        return KernelProgram(
            engine="dmm-conventional",
            n=self.n,
            width=self.width,
            ops=(
                CasualWrite(
                    label="dmm-conventional", p=self.p, space="shared"
                ),
            ),
        )

    def rounds(self) -> list[AccessRound]:
        """The three shared rounds, with real address streams."""
        idx = coalesced_addresses(self.n)
        return [
            AccessRound("shared", "read", idx, "a", block_size=self.n),
            AccessRound("shared", "read", idx, "p", block_size=self.n),
            AccessRound(
                "shared", "write", self.p.astype(np.int64), "b",
                block_size=self.n,
            ),
        ]

    def time(self, machine: DMM | None = None) -> int:
        """Total DMM time: ``2 n/w + B_w(P)`` (+ latency terms)."""
        dmm = machine or DMM(self.width)
        return sum(dmm.round_time(r.addresses) for r in self.rounds())


@register_engine("dmm-scheduled")
class DMMScheduledPermutation(EngineBase):
    """Conflict-free permutation in one DMM: 4 regular rounds.

    Planning builds the bank multigraph, colours it, and stores the
    thread schedule ``s`` (and ``t = p[s]``) exactly as ref [9]'s CUDA
    implementation does.
    """

    def __init__(self, s: np.ndarray, t: np.ndarray, width: int) -> None:
        self.s = s
        self.t = t
        self.width = width
        self.n = int(s.shape[0])

    @property
    def p(self) -> np.ndarray:
        """The permutation the schedule realises: ``p[s[i]] = t[i]``."""
        p = np.empty(self.n, dtype=np.int64)
        p[self.s.astype(np.int64)] = self.t.astype(np.int64)
        return p

    @classmethod
    def plan(
        cls, p: np.ndarray, width: int = 32, backend: str = "auto"
    ) -> "DMMScheduledPermutation":
        p = check_permutation(p)
        n = int(p.shape[0])
        if width < 1:
            raise SizeError(f"width must be >= 1, got {width}")
        if n % width != 0:
            raise SizeError(f"n = {n} must be a multiple of the width {width}")
        if n == 0:
            empty = np.empty(0, dtype=np.int64)
            return cls(empty, empty, width)
        i = np.arange(n, dtype=np.int64)
        graph = RegularBipartiteMultigraph.from_edges(
            i % width, p % width, width, width
        )
        colors = edge_coloring(graph, backend=backend)
        verify_edge_coloring(graph, colors, expect_colors=n // width)
        # Thread (warp r, lane b) handles the element of colour r whose
        # source bank is b: within each warp both the sources and (by
        # the matching property) the destinations hit distinct banks.
        s = np.empty(n, dtype=np.int64)
        s[colors * width + (i % width)] = i
        t = p[s]
        dtype = smallest_index_dtype(n - 1)
        return cls(s.astype(dtype), t.astype(dtype), width)

    def verify_conflict_free(self) -> None:
        """Both access patterns must be bank-conflict-free per warp."""
        for name, arr in (("s", self.s), ("t", self.t)):
            stages = shared_warp_stages(arr.astype(np.int64), self.width)
            if stages.size and stages.max() > 1:
                raise SchedulingError(
                    f"DMM schedule {name} has a bank conflict"
                )

    def apply(
        self, a: np.ndarray, recorder: TraceRecorder | None = None
    ) -> np.ndarray:
        """Permute ``a`` through the schedule: ``b[t[i]] = a[s[i]]``."""
        del recorder
        a = np.asarray(a)
        if a.shape != (self.n,):
            raise SizeError(f"a must have shape ({self.n},), got {a.shape}")
        b = np.empty_like(a)
        b[self.t.astype(np.int64)] = a[self.s.astype(np.int64)]
        return b

    def lower(self) -> KernelProgram:
        return KernelProgram(
            engine="dmm-scheduled",
            n=self.n,
            width=self.width,
            ops=(
                GatherScatter(label="dmm-scheduled", s=self.s, t=self.t),
            ),
        )

    @classmethod
    def from_program(
        cls, program: KernelProgram, p: np.ndarray
    ) -> "DMMScheduledPermutation":
        """Reconstruct bitwise from the carried schedule arrays."""
        del p
        if len(program.ops) != 1 or not isinstance(
            program.ops[0], GatherScatter
        ):
            raise ValidationError(
                "not a dmm-scheduled program: "
                f"{[op.kind for op in program.ops]}"
            )
        op = program.ops[0]
        return cls(op.s, op.t, width=program.width)

    def rounds(self) -> list[AccessRound]:
        """The four conflict-free shared rounds."""
        idx = coalesced_addresses(self.n)
        s64 = self.s.astype(np.int64)
        t64 = self.t.astype(np.int64)
        return [
            AccessRound("shared", "read", idx, "s", block_size=self.n),
            AccessRound("shared", "read", idx, "t", block_size=self.n),
            AccessRound("shared", "read", s64, "a", block_size=self.n),
            AccessRound("shared", "write", t64, "b", block_size=self.n),
        ]

    def time(self, machine: DMM | None = None) -> int:
        """Total DMM time: ``4 n/w`` (+ latency terms), any ``p``."""
        dmm = machine or DMM(self.width)
        return sum(dmm.round_time(r.addresses) for r in self.rounds())
