"""Column-wise permutation (paper Section VI, Lemma 8).

A column-wise permutation — element at row ``r`` of column ``k`` moves
to row ``delta[k, r]`` of the same column — is performed as

    transpose  ∘  row-wise(delta)  ∘  transpose

After the first transpose, column ``k`` lies in row ``k`` (the element
formerly at ``(r, k)`` sits at ``(k, r)``), so the row-wise pass with
``gamma = delta`` moves it to ``(k, delta[k, r])``, and the second
transpose returns it to ``(delta[k, r], k)``.

Round counts add up to Table I's column-wise row: 5 coalesced reads,
3 coalesced writes, 4 conflict-free reads, 4 conflict-free writes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.rowwise import RowwiseSchedule
from repro.core.transpose import TiledTranspose
from repro.errors import SizeError
from repro.machine.hmm import HMM
from repro.machine.memory import TraceRecorder
from repro.machine.params import MachineParams
from repro.machine.trace import ProgramTrace


@dataclass
class ColumnwiseSchedule:
    """A planned conflict-free column-wise permutation.

    ``delta[k, r]`` is the destination row of the element at
    ``(row r, column k)``; each row of ``delta`` (i.e. each column of
    the matrix) must be a permutation.
    """

    rowwise: RowwiseSchedule
    transpose: TiledTranspose

    @classmethod
    def plan(
        cls, delta: np.ndarray, width: int, backend: str = "auto"
    ) -> "ColumnwiseSchedule":
        delta = np.asarray(delta)
        if delta.ndim != 2 or delta.shape[0] != delta.shape[1]:
            raise SizeError(
                f"delta must be square (column count == row count), got "
                f"shape {delta.shape}"
            )
        rowwise = RowwiseSchedule.plan(delta, width, backend=backend)
        transpose = TiledTranspose(delta.shape[0], width)
        return cls(rowwise=rowwise, transpose=transpose)

    @property
    def m(self) -> int:
        return self.rowwise.m

    @property
    def width(self) -> int:
        return self.rowwise.width

    def shared_bytes(self, dtype) -> int:
        """Worst per-block shared footprint across the three kernels."""
        return max(
            self.rowwise.shared_bytes(dtype),
            self.transpose.shared_bytes(dtype),
        )

    def apply(
        self, mat: np.ndarray, recorder: TraceRecorder | None = None
    ) -> np.ndarray:
        """Apply the column-wise permutation to ``mat``."""
        mat = np.asarray(mat)
        if mat.shape != (self.m, self.m):
            raise SizeError(
                f"matrix must have shape ({self.m}, {self.m}), got {mat.shape}"
            )
        staged = self.transpose.apply(mat, recorder)
        permuted = self.rowwise.apply(staged, recorder)
        return self.transpose.apply(permuted, recorder)

    def simulate(
        self,
        machine: HMM | MachineParams | None = None,
        dtype=np.float32,
    ) -> ProgramTrace:
        """Charge the three kernels on an HMM and return the trace."""
        if machine is None:
            machine = HMM()
        elif isinstance(machine, MachineParams):
            machine = HMM(machine)
        rec = TraceRecorder(hmm=machine, name="columnwise")
        self.apply(np.zeros((self.m, self.m), dtype=dtype), recorder=rec)
        assert rec.trace is not None
        return rec.trace
