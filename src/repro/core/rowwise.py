"""Conflict-free row-wise permutation (paper Section VI).

Given per-row permutations ``gamma`` (the element in column ``i`` of
row ``j`` must move to column ``gamma[j, i]``), a naive in-shared-memory
permutation would suffer bank conflicts.  The paper removes them with a
König edge colouring:

1. For each row, build the **bank multigraph**: one edge
   ``(i mod w) -> (gamma[i] mod w)`` per element.  It is regular of
   degree ``m / w``, hence ``m/w``-edge-colourable (Theorem 6).
2. Let ``c(i)`` be the colour of element ``i`` and define
   ``alpha(i) = c(i) * w + (i mod w)``.  ``alpha`` is a permutation:
   within one colour the ``w`` edges leave distinct source banks.
3. The schedule arrays are ``s = alpha`` and
   ``t = gamma ∘ alpha⁻¹`` — stored, like the paper's implementation,
   as 16-bit integers in the global memory ("2-dimensional arrays of
   short int, since at most 16 bits are necessary").

The four-step kernel then performs (per row ``j``, thread ``i``):

* Step 1: ``x[s[j][i]] <- a[j][i]``    — write bank ``s[j][i] mod w =
  i mod w``: conflict-free;
* Step 2: ``t' <- t[j][i]``            — coalesced read;
* Step 3: ``y[t'] <- x[i]``            — read bank ``i mod w``
  conflict-free; write bank = the destination bank of thread ``i``'s
  colour-class matching edge: conflict-free;
* Step 4: ``b[j][i] <- y[i]``          — coalesced write.

Total: 3 coalesced global reads (``a``, ``s``, ``t``), 1 coalesced
global write (``b``), 2 conflict-free shared reads and 2 conflict-free
shared writes — exactly Table I's row.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.coloring import RegularBipartiteMultigraph, edge_coloring
from repro.coloring.verify import verify_edge_coloring
from repro.errors import SchedulingError, SizeError
from repro.machine.hmm import HMM
from repro.machine.memory import (
    NullRecorder,
    TraceRecorder,
    TracedGlobalArray,
    TracedSharedArray,
)
from repro.machine.params import MachineParams
from repro.machine.requests import coalesced_addresses
from repro.machine.trace import ProgramTrace
from repro.util.arrays import smallest_index_dtype


def _check_row_permutations(gamma: np.ndarray) -> np.ndarray:
    """Validate that every row of ``gamma`` is a permutation of its columns."""
    gamma = np.asarray(gamma)
    if gamma.ndim != 2:
        raise SizeError(f"gamma must be 2-D, got shape {gamma.shape}")
    if not np.issubdtype(gamma.dtype, np.integer):
        raise SizeError(f"gamma must be integral, got dtype {gamma.dtype}")
    rows, m = gamma.shape
    if m == 0:
        return gamma.astype(np.int64, copy=False)
    sorted_rows = np.sort(gamma, axis=1)
    if not np.array_equal(
        sorted_rows, np.broadcast_to(np.arange(m, dtype=sorted_rows.dtype), (rows, m))
    ):
        raise SchedulingError("every row of gamma must be a permutation of 0..m-1")
    return gamma.astype(np.int64, copy=False)


@dataclass
class RowwiseSchedule:
    """A planned conflict-free row-wise permutation.

    Attributes
    ----------
    gamma:
        ``(rows, m)`` destination columns (``gamma[j, i]`` = where the
        element at ``(j, i)`` goes).
    s, t:
        The schedule arrays of Section VI, in the smallest sufficient
        unsigned dtype (``uint16`` for every size the paper uses).
    width:
        Machine width ``w``; ``m`` must be a multiple of it.
    """

    gamma: np.ndarray
    s: np.ndarray
    t: np.ndarray
    width: int

    @property
    def rows(self) -> int:
        return int(self.gamma.shape[0])

    @property
    def m(self) -> int:
        return int(self.gamma.shape[1])

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    @classmethod
    def plan(
        cls, gamma: np.ndarray, width: int, backend: str = "auto"
    ) -> "RowwiseSchedule":
        """Build the ``s``/``t`` schedule from the row permutations.

        All rows are coloured in a single call: the per-row bank
        multigraphs are disjoint, so stacking them (row ``j``'s banks at
        node offset ``j*w``) yields one regular multigraph that any
        backend colours at once.
        """
        gamma = _check_row_permutations(gamma)
        rows, m = gamma.shape
        if width < 1:
            raise SizeError(f"width must be >= 1, got {width}")
        if m % width != 0:
            raise SizeError(
                f"row length m = {m} must be a multiple of the width {width}"
            )
        cols = np.arange(m, dtype=np.int64)
        row_offset = (np.arange(rows, dtype=np.int64) * width)[:, None]
        left = (row_offset + (cols % width)[None, :]).reshape(-1)
        right = (row_offset + gamma % width).reshape(-1)
        graph = RegularBipartiteMultigraph.from_edges(
            left, right, rows * width, rows * width
        )
        with telemetry.span("rowwise.plan.coloring", rows=rows, m=m,
                            backend=backend):
            colors = edge_coloring(graph, backend=backend)
            verify_edge_coloring(graph, colors,
                                 expect_colors=max(m // width, 1))
            telemetry.count("coloring.rows_colored", rows)

        c = colors.reshape(rows, m)
        alpha = c * width + (cols % width)[None, :]
        # alpha is a permutation per row; invert it vectorised.
        alpha_inv = np.empty_like(alpha)
        row_idx = np.arange(rows)[:, None]
        alpha_inv[row_idx, alpha] = cols[None, :]
        t = np.take_along_axis(gamma, alpha_inv, axis=1)

        dtype = smallest_index_dtype(max(m - 1, 0))
        return cls(
            gamma=gamma,
            s=alpha.astype(dtype),
            t=t.astype(dtype),
            width=width,
        )

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def verify_conflict_free(self) -> None:
        """Assert the schedule's shared accesses are conflict-free.

        Checks, for every warp of ``w`` consecutive threads in every
        row: the write banks of step 1 (``s mod w``) and of step 3
        (``t mod w``) are all distinct.  Raises
        :class:`~repro.errors.SchedulingError` on violation.
        """
        for name, arr in (("s", self.s), ("t", self.t)):
            banks = (arr.astype(np.int64) % self.width).reshape(
                self.rows, self.m // self.width, self.width
            )
            ordered = np.sort(banks, axis=2)
            if np.any(ordered[:, :, 1:] == ordered[:, :, :-1]):
                raise SchedulingError(
                    f"schedule array {name} has a bank conflict"
                )

    def verify(self) -> None:
        """Full schedule validation: conflict-freedom *and* semantics.

        Beyond the bank checks, the ``s``/``t`` pair must actually
        encode ``gamma``: both must be row-wise permutations and satisfy
        ``t[s[u]] == gamma[u]`` (since ``t = gamma ∘ s⁻¹``).  Catches
        corrupted or hand-edited schedules that happen to stay
        conflict-free.
        """
        self.verify_conflict_free()
        m = self.m
        for name, arr in (("s", self.s), ("t", self.t)):
            ordered = np.sort(arr.astype(np.int64), axis=1)
            if not np.array_equal(
                ordered,
                np.broadcast_to(np.arange(m), (self.rows, m)),
            ):
                raise SchedulingError(
                    f"schedule array {name} is not a row-wise permutation"
                )
        recovered = np.take_along_axis(
            self.t.astype(np.int64), self.s.astype(np.int64), axis=1
        )
        if not np.array_equal(recovered, self.gamma):
            raise SchedulingError(
                "schedule arrays s/t do not encode gamma (t[s[u]] != gamma[u])"
            )

    def shared_bytes(self, dtype) -> int:
        """Shared memory per block: the two row buffers ``x`` and ``y``.

        This is the quantity that hits the GTX-680's 48 KB wall for
        ``sqrt(n) = 4096`` doubles (2 * 4096 * 8 B = 64 KB).
        """
        return 2 * self.m * np.dtype(dtype).itemsize

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def apply(
        self, mat: np.ndarray, recorder: TraceRecorder | None = None
    ) -> np.ndarray:
        """Apply the row-wise permutation to ``mat`` (shape ``(rows, m)``).

        Executes the faithful four-step kernel through traced arrays, so
        the result is produced by the very ``s``/``t`` schedule that the
        simulator charges.
        """
        mat = np.asarray(mat)
        if mat.shape != (self.rows, self.m):
            raise SizeError(
                f"matrix must have shape ({self.rows}, {self.m}), got {mat.shape}"
            )
        rec = recorder if recorder is not None else NullRecorder()
        n = mat.size
        ga = TracedGlobalArray(mat, "a", rec)
        gs = TracedGlobalArray(self.s, "s", rec)
        gt = TracedGlobalArray(self.t, "t", rec)
        gb = TracedGlobalArray(np.empty_like(mat), "b", rec)
        x = TracedSharedArray(
            self.rows, self.m, mat.dtype, "x", rec, block_threads=self.m
        )
        y = TracedSharedArray(
            self.rows, self.m, mat.dtype, "y", rec, block_threads=self.m
        )
        idx = coalesced_addresses(n)
        tile = np.broadcast_to(
            np.arange(self.m, dtype=np.int64), (self.rows, self.m)
        )

        rec.begin_kernel("rowwise", self.shared_bytes(mat.dtype))
        values = ga.gather(idx)                       # read a   (coalesced)
        s_val = gs.gather(idx)                        # read s   (coalesced)
        x.scatter(
            s_val.reshape(self.rows, self.m),
            values.reshape(self.rows, self.m),
        )                                             # step 1   (conflict-free)
        t_val = gt.gather(idx)                        # step 2   (coalesced)
        staged = x.gather(tile)                       # step 3a  (conflict-free)
        y.scatter(t_val.reshape(self.rows, self.m), staged)  # 3b (conflict-free)
        result = y.gather(tile)                       # step 4a  (conflict-free)
        gb.scatter(idx, result.reshape(-1))           # step 4b  (coalesced)
        rec.end_kernel()
        return gb.data.reshape(self.rows, self.m)

    def apply_batch(self, mats: np.ndarray) -> np.ndarray:
        """Apply the same row permutations to a stack of matrices.

        ``mats`` has shape ``(batch, rows, m)``; the data movement per
        matrix is identical to :meth:`apply` (same ``s``/``t``
        schedule), vectorised over the leading axis.
        """
        mats = np.asarray(mats)
        if mats.ndim != 3 or mats.shape[1:] != (self.rows, self.m):
            raise SizeError(
                f"batch must have shape (k, {self.rows}, {self.m}), got "
                f"{mats.shape}"
            )
        row_idx = np.arange(self.rows)[:, None]
        s = self.s.astype(np.int64)
        t = self.t.astype(np.int64)
        x = np.empty_like(mats)
        x[:, row_idx, s] = mats              # step 1
        y = np.empty_like(mats)
        y[:, row_idx, t] = x                 # step 3
        return y                             # step 4 layout

    def simulate(
        self,
        machine: HMM | MachineParams | None = None,
        dtype=np.float32,
    ) -> ProgramTrace:
        """Charge the row-wise kernel on an HMM and return the trace."""
        if machine is None:
            machine = HMM()
        elif isinstance(machine, MachineParams):
            machine = HMM(machine)
        rec = TraceRecorder(hmm=machine, name="rowwise")
        self.apply(np.zeros((self.rows, self.m), dtype=dtype), recorder=rec)
        assert rec.trace is not None
        return rec.trace
