"""Schedule persistence.

The scheduled algorithm's whole point is that planning happens *once*,
offline — so plans must be storable.  A plan serialises to a single
compressed ``.npz``: the permutation, the width, the three-step
decomposition and the six ``s``/``t`` arrays, exactly the data the
paper's implementation keeps in global memory between kernel launches.
Loading rebuilds the plan without re-running any colouring.

Because a stored plan is *trusted forever*, format version 2 makes the
file self-verifying: every file carries a SHA-256 checksum over the
canonically packed payload arrays plus a library-version stamp.
:func:`load_plan` verifies the checksum before the (much more
expensive) structural ``plan.verify()``, and maps every way a file can
be bad onto a precise exception:

* unreadable / truncated / key-stripped file →
  :class:`~repro.errors.PlanCorruptionError`,
* checksum mismatch (bit rot, tampering)   →
  :class:`~repro.errors.PlanCorruptionError`,
* written by another format version         →
  :class:`~repro.errors.PlanVersionError`.

On top of integrity, files carry an *optimality proof*: by default
:func:`save_plan` embeds the static conflict-freedom certificate of
:mod:`repro.staticcheck` (bound to the payload checksum), and
:func:`load_plan` re-validates it — a loaded plan is then proven both
authentic **and** bank-conflict-free/coalesced without running the
simulator.  The certificate is an optional extra key, so its presence
does not change the payload checksum or the format version.

See ``docs/robustness.md`` for the exact file layout and checksum
definition, and ``docs/static-analysis.md`` for the certificate.
"""

from __future__ import annotations

import hashlib
import zipfile
from pathlib import Path

import numpy as np

from repro import telemetry
from repro.core.colwise import ColumnwiseSchedule
from repro.core.rowwise import RowwiseSchedule
from repro.core.scheduled import ScheduledPermutation
from repro.core.scheduler import ThreeStepDecomposition
from repro.core.transpose import TiledTranspose
from repro.errors import (
    CertificateError,
    PlanCorruptionError,
    PlanVersionError,
    ValidationError,
)

#: Format tag stored in every file; bump on incompatible change.
#: Version history: 1 = raw arrays; 2 = adds ``checksum`` (SHA-256 over
#: the payload) and ``library_version`` stamps.
FORMAT_VERSION = 2

#: Payload keys in canonical (checksum) order.  ``checksum`` and
#: ``library_version`` are metadata and deliberately not part of it.
PAYLOAD_KEYS = (
    "format_version",
    "p",
    "width",
    "colors",
    "gamma1",
    "delta",
    "gamma3",
    "s1",
    "t1",
    "s2",
    "t2",
    "s3",
    "t3",
)


def plan_checksum(arrays: dict) -> str:
    """SHA-256 hex digest over the payload arrays of a plan file.

    Each key of :data:`PAYLOAD_KEYS` contributes, in order: its name,
    the array's dtype string, its shape, and its C-contiguous bytes —
    so any bit flip, shape change or retyping changes the digest.
    """
    digest = hashlib.sha256()
    for key in PAYLOAD_KEYS:
        arr = np.ascontiguousarray(arrays[key])
        digest.update(key.encode())
        digest.update(str(arr.dtype).encode())
        digest.update(repr(arr.shape).encode())
        digest.update(arr.tobytes())
    return digest.hexdigest()


def _pack(plan: ScheduledPermutation) -> dict:
    return {
        "format_version": np.int64(FORMAT_VERSION),
        "p": plan.p,
        "width": np.int64(plan.width),
        "colors": plan.decomposition.colors,
        "gamma1": plan.decomposition.gamma1,
        "delta": plan.decomposition.delta,
        "gamma3": plan.decomposition.gamma3,
        "s1": plan.step1.s,
        "t1": plan.step1.t,
        "s2": plan.step2.rowwise.s,
        "t2": plan.step2.rowwise.t,
        "s3": plan.step3.s,
        "t3": plan.step3.t,
    }


def save_plan(path, plan: ScheduledPermutation, certify: bool = True) -> None:
    """Serialise a planned scheduled permutation to ``path`` (.npz).

    The file is stamped with :data:`FORMAT_VERSION`, the writing
    library's version, and a SHA-256 checksum over the payload.  With
    ``certify=True`` (the default) the static conflict-freedom
    certificate is computed, bound to that checksum and embedded; a
    plan that fails its own proof raises
    :class:`~repro.errors.CertificateError` and nothing is written —
    a conflicted plan must never be persisted as trusted.  Pass
    ``certify=False`` to write a bare (still checksummed) file.
    """
    if not isinstance(plan, ScheduledPermutation):
        raise ValidationError(
            f"expected a ScheduledPermutation, got {type(plan).__name__}"
        )
    from repro import __version__

    with telemetry.span("plan_io.save", n=plan.n) as sp:
        arrays = _pack(plan)
        checksum = plan_checksum(arrays)
        extra: dict = {}
        if certify:
            from repro.staticcheck.certifier import certify_plan

            cert = certify_plan(plan).bound_to(checksum)
            if not cert.ok:
                assert cert.counterexample is not None
                raise CertificateError(
                    f"refusing to save {path}: plan is not conflict-"
                    f"free — {cert.counterexample.describe()}"
                )
            plan.certificate = cert
            extra["certificate"] = np.str_(cert.to_json())
        np.savez_compressed(
            Path(path),
            checksum=np.str_(checksum),
            library_version=np.str_(__version__),
            **extra,
            **arrays,
        )
        sp.set(file_bytes=Path(path).stat().st_size,
               certified=bool(certify))
        telemetry.count("plan_io.saved")


def _read_payload(path) -> tuple[dict, str, str | None]:
    """Open ``path`` and return ``(payload arrays, stored checksum,
    certificate JSON or None)``.

    All the ways a file can be unreadable — not a zip at all, truncated
    mid-archive, a payload key deleted — surface here and are wrapped
    in :class:`PlanCorruptionError` naming the offending path, instead
    of leaking raw ``zipfile`` / ``KeyError`` internals.
    """
    try:
        with np.load(Path(path)) as data:
            version = int(data["format_version"])
            if version != FORMAT_VERSION:
                if version == 1:
                    raise PlanVersionError(
                        f"{path}: plan file uses format version 1, which "
                        "carried no integrity checksum and can no longer "
                        "be trusted or loaded; this build reads version "
                        f"{FORMAT_VERSION}.  Re-create the file from the "
                        "original permutation with save_plan() or "
                        "`python -m repro plan` — planning is "
                        "deterministic, so the regenerated schedule is "
                        "identical."
                    )
                raise PlanVersionError(
                    f"{path}: unsupported plan format version {version}; "
                    f"this build reads version {FORMAT_VERSION}"
                )
            arrays = {key: data[key] for key in PAYLOAD_KEYS}
            stored = str(data["checksum"])
            cert_json = (
                str(data["certificate"])
                if "certificate" in data.files else None
            )
    except PlanVersionError:
        raise
    except (zipfile.BadZipFile, EOFError, OSError, ValueError) as exc:
        raise PlanCorruptionError(
            f"{path}: plan file is unreadable (truncated or not a "
            f"save_plan archive): {exc}"
        ) from exc
    except KeyError as exc:
        # np.load's KeyError message is already a sentence naming the
        # missing key ("s2 is not a file in the archive").
        raise PlanCorruptionError(
            f"{path}: plan file is incomplete: {exc.args[0]}"
        ) from exc
    return arrays, stored, cert_json


def load_plan(path) -> ScheduledPermutation:
    """Rebuild a plan saved by :func:`save_plan`.

    Verification happens cheapest-first: format version, then the
    SHA-256 content checksum, then the embedded certificate (well-
    formed, bound to this exact payload checksum, positive, and
    matching the plan's ``n``/``width``), then the full structural
    ``plan.verify()`` (decomposition routing, colouring and
    conflict-freedom) — so a corrupted file fails loudly rather than
    permuting silently wrong, and fails *early* rather than after an
    expensive rebuild.  A validated certificate is attached to the
    returned plan as ``plan.certificate``.
    """
    with telemetry.span("plan_io.load") as sp:
        try:
            size = Path(path).stat().st_size
        except OSError:
            size = -1
        sp.set(file_bytes=size)
        try:
            plan = _load_plan_inner(path, sp)
        except Exception:
            telemetry.count("plan_io.rejected")
            raise
        telemetry.count("plan_io.loaded")
        return plan


def _load_plan_inner(path, sp) -> ScheduledPermutation:
    arrays, stored, cert_json = _read_payload(path)
    actual = plan_checksum(arrays)
    if actual != stored:
        raise PlanCorruptionError(
            f"{path}: plan checksum mismatch (stored {stored[:12]}..., "
            f"recomputed {actual[:12]}...); the file was corrupted or "
            "tampered with — re-plan from the original permutation"
        )
    certificate = None
    if cert_json is not None:
        certificate = _validate_certificate(path, cert_json, actual)
    p = arrays["p"]
    width = int(arrays["width"])
    decomposition = ThreeStepDecomposition(
        gamma1=arrays["gamma1"],
        delta=arrays["delta"],
        gamma3=arrays["gamma3"],
        colors=arrays["colors"],
    )
    m = decomposition.m
    step1 = RowwiseSchedule(
        gamma=decomposition.gamma1, s=arrays["s1"], t=arrays["t1"],
        width=width,
    )
    step2 = ColumnwiseSchedule(
        rowwise=RowwiseSchedule(
            gamma=decomposition.delta, s=arrays["s2"], t=arrays["t2"],
            width=width,
        ),
        transpose=TiledTranspose(m, width),
    )
    step3 = RowwiseSchedule(
        gamma=decomposition.gamma3, s=arrays["s3"], t=arrays["t3"],
        width=width,
    )
    plan = ScheduledPermutation(
        p=p,
        width=width,
        decomposition=decomposition,
        step1=step1,
        step2=step2,
        step3=step3,
        certificate=certificate,
    )
    if certificate is not None and (
        certificate.n != plan.n or certificate.width != width
    ):
        raise PlanCorruptionError(
            f"{path}: embedded certificate was issued for n = "
            f"{certificate.n}, w = {certificate.width}, but the plan "
            f"has n = {plan.n}, w = {width}"
        )
    with telemetry.span("plan_io.verify", n=plan.n):
        plan.verify()
    sp.set(n=plan.n, width=width, certified=certificate is not None)
    return plan


def _validate_certificate(path, cert_json: str, checksum: str):
    """Parse and police an embedded certificate (all failure modes are
    :class:`PlanCorruptionError` — a bad certificate means the file was
    hand-edited or spliced together from two files)."""
    from repro.staticcheck.certifier import Certificate

    try:
        cert = Certificate.from_json(cert_json)
    except CertificateError as exc:
        raise PlanCorruptionError(
            f"{path}: embedded certificate is malformed: {exc}"
        ) from exc
    if cert.plan_sha != checksum:
        raise PlanCorruptionError(
            f"{path}: embedded certificate is bound to payload "
            f"{str(cert.plan_sha)[:12]}..., not this file's "
            f"{checksum[:12]}... — certificate and payload do not "
            "belong together"
        )
    if not cert.ok:
        assert cert.counterexample is not None
        raise PlanCorruptionError(
            f"{path}: embedded certificate records a conflict "
            f"({cert.counterexample.describe()}); a negative "
            "certificate must never be persisted"
        )
    return cert
