"""Schedule persistence.

The scheduled algorithm's whole point is that planning happens *once*,
offline — so plans must be storable.  A plan serialises to a single
compressed ``.npz``: the permutation, the width, the three-step
decomposition and the six ``s``/``t`` arrays, exactly the data the
paper's implementation keeps in global memory between kernel launches.
Loading rebuilds the plan without re-running any colouring.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.colwise import ColumnwiseSchedule
from repro.core.rowwise import RowwiseSchedule
from repro.core.scheduled import ScheduledPermutation
from repro.core.scheduler import ThreeStepDecomposition
from repro.core.transpose import TiledTranspose
from repro.errors import ValidationError

#: Format tag stored in every file; bump on incompatible change.
FORMAT_VERSION = 1


def save_plan(path, plan: ScheduledPermutation) -> None:
    """Serialise a planned scheduled permutation to ``path`` (.npz)."""
    if not isinstance(plan, ScheduledPermutation):
        raise ValidationError(
            f"expected a ScheduledPermutation, got {type(plan).__name__}"
        )
    np.savez_compressed(
        Path(path),
        format_version=np.int64(FORMAT_VERSION),
        p=plan.p,
        width=np.int64(plan.width),
        colors=plan.decomposition.colors,
        gamma1=plan.decomposition.gamma1,
        delta=plan.decomposition.delta,
        gamma3=plan.decomposition.gamma3,
        s1=plan.step1.s,
        t1=plan.step1.t,
        s2=plan.step2.rowwise.s,
        t2=plan.step2.rowwise.t,
        s3=plan.step3.s,
        t3=plan.step3.t,
    )


def load_plan(path) -> ScheduledPermutation:
    """Rebuild a plan saved by :func:`save_plan`.

    The loaded plan is verified end to end (decomposition routing and
    conflict-freedom) before being returned, so a corrupted file fails
    loudly rather than permuting silently wrong.
    """
    with np.load(Path(path)) as data:
        version = int(data["format_version"])
        if version != FORMAT_VERSION:
            raise ValidationError(
                f"unsupported plan format version {version}; this build "
                f"reads version {FORMAT_VERSION}"
            )
        p = data["p"]
        width = int(data["width"])
        decomposition = ThreeStepDecomposition(
            gamma1=data["gamma1"],
            delta=data["delta"],
            gamma3=data["gamma3"],
            colors=data["colors"],
        )
        m = decomposition.m
        step1 = RowwiseSchedule(
            gamma=decomposition.gamma1, s=data["s1"], t=data["t1"],
            width=width,
        )
        step2 = ColumnwiseSchedule(
            rowwise=RowwiseSchedule(
                gamma=decomposition.delta, s=data["s2"], t=data["t2"],
                width=width,
            ),
            transpose=TiledTranspose(m, width),
        )
        step3 = RowwiseSchedule(
            gamma=decomposition.gamma3, s=data["s3"], t=data["t3"],
            width=width,
        )
    plan = ScheduledPermutation(
        p=p,
        width=width,
        decomposition=decomposition,
        step1=step1,
        step2=step2,
        step3=step3,
    )
    plan.verify()
    return plan
