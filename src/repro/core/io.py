"""Plan persistence.

The scheduled algorithm's whole point is that planning happens *once*,
offline — so plans must be storable.  Format version 3 serialises the
engine's *lowered kernel program* (:class:`~repro.ir.program.
KernelProgram`) to a single compressed ``.npz``: the engine name, the
permutation, and one group of keys per op (``op0.kind``, ``op0.gamma``,
``op0.s`` ...) holding exactly the schedule arrays the op carries.
Because every registered engine lowers to the IR, **any** engine's plan
can be saved and loaded — loading rebuilds the planned engine through
``Engine.from_program`` without re-running any colouring.

Because a stored plan is *trusted forever*, the file is self-verifying:
every file carries a SHA-256 checksum over the canonically packed
payload arrays plus a library-version stamp.  :func:`load_plan`
verifies the checksum before the (much more expensive) structural
verification, and maps every way a file can be bad onto a precise
exception:

* unreadable / truncated / key-stripped file →
  :class:`~repro.errors.PlanCorruptionError`,
* checksum mismatch (bit rot, tampering)   →
  :class:`~repro.errors.PlanCorruptionError`,
* written by another format version         →
  :class:`~repro.errors.PlanVersionError`.

Files of the previous format (version 2: the fixed thirteen-key layout
of a scheduled plan) still load — the golden plan in ``tests/data`` is
one — but new files are always written as version 3.

On top of integrity, files embed machine-checked *proofs*:

* files whose engine carries a scheduled plan (the ``scheduled``
  engine itself, or ``padded`` wrapping one) embed an *optimality
  proof*: by default :func:`save_plan` computes the static
  conflict-freedom certificate of :mod:`repro.staticcheck`, binds it
  to the payload checksum and stores it;
* **every** v3 file embeds a *correctness proof*: the semantic
  certificate of :mod:`repro.staticcheck.semantics`, recording that
  the stored program's symbolically-computed denotation is a bijection
  equal to the stored permutation ``p``.

:func:`load_plan` re-validates both — not just the SHA binding: the
semantic certificate's denotation is *recomputed* from the unpacked
program and compared against the certificate digest and the stored
``p``, so a file whose program no longer denotes its permutation is
refused as corrupt even if internally self-consistent.  A loaded plan
is then proven authentic, bank-conflict-free/coalesced (when
applicable) **and** semantically correct without running an executor.
Both certificates are optional extra keys, so their presence does not
change the payload checksum or the format version.

See ``docs/robustness.md`` for the exact file layout and checksum
definition, and ``docs/static-analysis.md`` for both certificates.
"""

from __future__ import annotations

import hashlib
import zipfile
from pathlib import Path
from typing import Any

import numpy as np

from repro import telemetry
from repro.core.colwise import ColumnwiseSchedule
from repro.core.rowwise import RowwiseSchedule
from repro.core.scheduled import ScheduledPermutation
from repro.core.scheduler import ThreeStepDecomposition
from repro.core.transpose import TiledTranspose
from repro.errors import (
    CertificateError,
    PlanCorruptionError,
    PlanVersionError,
    ValidationError,
)
from repro.ir.ops import OP_KINDS
from repro.ir.program import KernelProgram
from repro.ir.registry import get_engine

#: Format tag stored in every file; bump on incompatible change.
#: Version history: 1 = raw arrays; 2 = adds ``checksum`` (SHA-256 over
#: the payload) and ``library_version`` stamps; 3 = generic lowered
#: kernel programs (any registered engine, ``op{i}.*`` key groups).
FORMAT_VERSION = 3

#: Format tag of sealed sidecar files (``save_sealed``); independent of
#: :data:`FORMAT_VERSION` because sealed artifacts are derived caches,
#: not plans — losing one costs a re-seal, never a re-plan.
SEALED_FORMAT_VERSION = 1

#: Keys that describe the file rather than the plan; excluded from the
#: checksum so adding a certificate does not change the payload digest.
METADATA_KEYS = (
    "checksum",
    "library_version",
    "certificate",
    "semantic_certificate",
    "pipeline",
    "fingerprint",
    "shard_d",
    "shard_fingerprint",
)

#: Optional provenance metadata the planner stamps on cached plans:
#: the pass-pipeline signature the plan was optimized under, the
#: content-addressed fingerprint it is cached by, and — when the plan
#: was sharded for out-of-core streaming — the shard count and the
#: ``d``-scoped shard fingerprint.
PROVENANCE_KEYS = ("pipeline", "fingerprint", "shard_d",
                   "shard_fingerprint")

#: Version-2 payload keys in their canonical (checksum) order; kept for
#: loading legacy scheduled-plan files.
PAYLOAD_KEYS = (
    "format_version",
    "p",
    "width",
    "colors",
    "gamma1",
    "delta",
    "gamma3",
    "s1",
    "t1",
    "s2",
    "t2",
    "s3",
    "t3",
)


def plan_checksum(arrays: dict, keys: tuple[str, ...] | None = None) -> str:
    """SHA-256 hex digest over the payload arrays of a plan file.

    Each key contributes, in order: its name, the array's dtype string,
    its shape, and its C-contiguous bytes — so any bit flip, shape
    change, retyping, or added/removed key changes the digest.  Version
    3 files hash every non-metadata key in sorted order (the default);
    version 2 files pass ``keys=PAYLOAD_KEYS`` for the legacy fixed
    order.
    """
    if keys is None:
        keys = tuple(sorted(k for k in arrays if k not in METADATA_KEYS))
    digest = hashlib.sha256()
    for key in keys:
        arr = np.ascontiguousarray(arrays[key])
        digest.update(key.encode())
        digest.update(str(arr.dtype).encode())
        digest.update(repr(arr.shape).encode())
        digest.update(arr.tobytes())
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Packing (version 3: generic kernel programs)
# ----------------------------------------------------------------------


def _narrow_index_array(arr: np.ndarray) -> np.ndarray:
    """The narrowest sufficient unsigned dtype for an index array.

    Plan arrays are indices (permutations, schedules, colourings):
    non-negative integers bounded by ``n``.  Stored at ``int64`` they
    waste 4--8x the bytes actually needed, so v3 files narrow them to
    the smallest unsigned dtype that holds the maximum value.  Arrays
    that are not integer, are empty, or contain negatives (sentinel
    conventions) are stored as-is.
    """
    arr = np.asarray(arr)
    if arr.dtype.kind not in "iu" or arr.size == 0:
        return arr
    if arr.dtype.kind == "i" and int(arr.min()) < 0:
        return arr
    return arr.astype(np.min_scalar_type(int(arr.max())))


def _store_narrowed(arrays: dict, key: str, value: np.ndarray) -> None:
    """Store ``value`` under ``key``, narrowed when that saves bytes.

    When narrowing changes the dtype, the original dtype string is
    recorded under ``key + ".dtype"`` so the loader can restore the
    array *bitwise identical* — the simulator prices schedule arrays
    by their in-memory width, so load must not change what the
    planner built.  Sidecar keys are payload (checksummed), never
    metadata: retyping one is tampering.
    """
    value = np.asarray(value)
    narrowed = _narrow_index_array(value)
    arrays[key] = narrowed
    if narrowed.dtype != value.dtype:
        arrays[key + ".dtype"] = np.str_(str(value.dtype))


def _restore_narrowed(arrays: dict, key: str) -> np.ndarray:
    """Load ``arrays[key]``, widening back to its recorded dtype."""
    value = np.asarray(arrays[key])
    sidecar = key + ".dtype"
    if sidecar in arrays:
        value = value.astype(np.dtype(str(arrays[sidecar])))
    return value


def _pack_program(program: KernelProgram, p: np.ndarray) -> dict:
    """Flatten a lowered program (plus its permutation) to npz keys."""
    arrays: dict = {
        "format_version": np.int64(FORMAT_VERSION),
        "engine": np.str_(program.engine),
        "n": np.int64(program.n),
        "width": np.int64(program.width),
        "num_ops": np.int64(len(program.ops)),
    }
    _store_narrowed(arrays, "p", np.asarray(p))
    for i, op in enumerate(program.ops):
        prefix = f"op{i}."
        arrays[prefix + "kind"] = np.str_(op.kind)
        arrays[prefix + "label"] = np.str_(op.label)
        for field in op._ARRAY_FIELDS:
            value = getattr(op, field)
            if value is not None:
                _store_narrowed(arrays, prefix + field, value)
        for field in op._SCALAR_FIELDS:
            arrays[prefix + field] = np.int64(getattr(op, field))
        for field in op._BOOL_FIELDS:
            arrays[prefix + field] = np.bool_(getattr(op, field))
        for field in op._STR_FIELDS:
            arrays[prefix + field] = np.str_(getattr(op, field))
    return arrays


def _unpack_program(path, arrays: dict) -> KernelProgram:
    """Rebuild the :class:`KernelProgram` from npz keys (checksum has
    already vouched for the key set, so failures here mean the file was
    written by an incompatible library, not corrupted)."""
    engine = str(arrays["engine"])
    num_ops = int(arrays["num_ops"])
    ops = []
    for i in range(num_ops):
        prefix = f"op{i}."
        kind = str(arrays[prefix + "kind"])
        op_cls = OP_KINDS.get(kind)
        if op_cls is None:
            raise PlanCorruptionError(
                f"{path}: plan file contains unknown op kind {kind!r}; "
                "the file was written by an incompatible library version"
            )
        kwargs: dict = {"label": str(arrays[prefix + "label"])}
        for field in op_cls._ARRAY_FIELDS:
            if prefix + field in arrays:
                kwargs[field] = _restore_narrowed(
                    arrays, prefix + field
                )
        for field in op_cls._SCALAR_FIELDS:
            kwargs[field] = int(arrays[prefix + field])
        for field in op_cls._BOOL_FIELDS:
            kwargs[field] = bool(arrays[prefix + field])
        for field in op_cls._STR_FIELDS:
            kwargs[field] = str(arrays[prefix + field])
        try:
            ops.append(op_cls(**kwargs))
        except (TypeError, KeyError) as exc:
            raise PlanCorruptionError(
                f"{path}: op {i} ({kind}) is missing required fields: "
                f"{exc}"
            ) from exc
    return KernelProgram(
        engine=engine,
        n=int(arrays["n"]),
        width=int(arrays["width"]),
        ops=tuple(ops),
    )


def _certifiable_plan(plan: Any) -> ScheduledPermutation | None:
    """The scheduled plan inside ``plan`` (itself, or ``plan.inner``
    for the padded wrapper), or ``None`` when the engine has no
    statically certifiable schedule."""
    if isinstance(plan, ScheduledPermutation):
        return plan
    inner = getattr(plan, "inner", None)
    if isinstance(inner, ScheduledPermutation):
        return inner
    return None


def save_plan(path, plan, certify: bool = True,
              provenance: dict | None = None) -> None:
    """Serialise a planned engine to ``path`` (.npz, format v3).

    ``plan`` may be any registered engine instance (its class carries
    ``engine_name``); anything else raises
    :class:`~repro.errors.ValidationError` naming the offending type.
    The file holds the engine's lowered kernel program and is stamped
    with :data:`FORMAT_VERSION`, the writing library's version, and a
    SHA-256 checksum over the payload.

    With ``certify=True`` (the default) and an engine carrying a
    scheduled plan, the static conflict-freedom certificate is
    computed, bound to that checksum and embedded; a plan that fails
    its own proof raises :class:`~repro.errors.CertificateError` and
    nothing is written — a conflicted plan must never be persisted as
    trusted.  Engines without a certifiable schedule (conventional,
    CPU, DMM) are saved without a conflict certificate.  In the same
    mode, a *semantic* certificate is computed for **every** engine:
    the program's denotation (:func:`repro.staticcheck.semantics.
    denote_program`) is proved a bijection equal to the stored
    permutation, and the digest-bound proof is embedded for the loader
    to re-verify.  A program that fails its own denotation proof also
    raises :class:`~repro.errors.CertificateError` unwritten.  Pass
    ``certify=False`` to write a bare (still checksummed) file.

    ``provenance`` optionally records the planner's compile context —
    :data:`PROVENANCE_KEYS` only (the pass-pipeline signature and the
    content-addressed fingerprint).  Provenance keys are metadata:
    they do not enter the payload checksum, so stamped and unstamped
    files holding the same plan share a digest.
    """
    engine_name = getattr(type(plan), "engine_name", "")
    if not engine_name:
        raise ValidationError(
            f"cannot save a {type(plan).__name__}: not a registered "
            "engine (no engine_name); register the class with "
            "repro.ir.register_engine or pass a planned engine instance"
        )
    if provenance is not None:
        unknown = sorted(set(provenance) - set(PROVENANCE_KEYS))
        if unknown:
            raise ValidationError(
                f"unknown provenance key(s) {unknown}; save_plan "
                f"records only {list(PROVENANCE_KEYS)}"
            )
    from repro import __version__

    program = plan.lower()
    with telemetry.span(
        "plan_io.save", n=program.n, engine=engine_name
    ) as sp:
        arrays = _pack_program(program, plan.p)
        checksum = plan_checksum(arrays)
        extra: dict = {}
        if provenance is not None:
            for key in PROVENANCE_KEYS:
                if key in provenance:
                    extra[key] = np.str_(provenance[key])
        certifiable = _certifiable_plan(plan)
        if certify and certifiable is not None:
            from repro.staticcheck.certifier import certify_plan

            cert = certify_plan(certifiable).bound_to(checksum)
            if not cert.ok:
                assert cert.counterexample is not None
                raise CertificateError(
                    f"refusing to save {path}: plan is not conflict-"
                    f"free — {cert.counterexample.describe()}"
                )
            certifiable.certificate = cert
            extra["certificate"] = np.str_(cert.to_json())
        if certify:
            from repro.staticcheck.semantics import validate_translation

            sem = validate_translation(
                program, program, requested=plan.p
            ).bound_to(checksum)
            if not sem.ok:
                raise CertificateError(
                    f"refusing to save {path}: program does not denote "
                    f"its own permutation — {sem.summary()}"
                )
            extra["semantic_certificate"] = np.str_(sem.to_json())
        np.savez_compressed(
            Path(path),
            checksum=np.str_(checksum),
            library_version=np.str_(__version__),
            **extra,
            **arrays,
        )
        sp.set(file_bytes=Path(path).stat().st_size,
               certified="certificate" in extra,
               semantically_certified="semantic_certificate" in extra)
        telemetry.count("plan_io.saved")


def _pack_v2(plan: ScheduledPermutation) -> dict:
    return {
        "format_version": np.int64(2),
        "p": plan.p,
        "width": np.int64(plan.width),
        "colors": plan.decomposition.colors,
        "gamma1": plan.decomposition.gamma1,
        "delta": plan.decomposition.delta,
        "gamma3": plan.decomposition.gamma3,
        "s1": plan.step1.s,
        "t1": plan.step1.t,
        "s2": plan.step2.rowwise.s,
        "t2": plan.step2.rowwise.t,
        "s3": plan.step3.s,
        "t3": plan.step3.t,
    }


def save_plan_v2(path, plan: ScheduledPermutation,
                 certify: bool = True) -> None:
    """Write the legacy version-2 layout (scheduled plans only).

    Kept so the migration tests can manufacture v2 files on demand;
    new code should use :func:`save_plan`.
    """
    if not isinstance(plan, ScheduledPermutation):
        raise ValidationError(
            f"expected a ScheduledPermutation, got {type(plan).__name__}"
        )
    from repro import __version__

    arrays = _pack_v2(plan)
    checksum = plan_checksum(arrays, keys=PAYLOAD_KEYS)
    extra: dict = {}
    if certify:
        from repro.staticcheck.certifier import certify_plan

        cert = certify_plan(plan).bound_to(checksum)
        if not cert.ok:
            assert cert.counterexample is not None
            raise CertificateError(
                f"refusing to save {path}: plan is not conflict-"
                f"free — {cert.counterexample.describe()}"
            )
        plan.certificate = cert
        extra["certificate"] = np.str_(cert.to_json())
    np.savez_compressed(
        Path(path),
        checksum=np.str_(checksum),
        library_version=np.str_(__version__),
        **extra,
        **arrays,
    )


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------


def _read_payload(
    path,
) -> tuple[int, dict, str, str | None, str | None]:
    """Open ``path`` and return ``(format version, payload arrays,
    stored checksum, conflict-certificate JSON or None, semantic-
    certificate JSON or None)``.

    All the ways a file can be unreadable — not a zip at all, truncated
    mid-archive, a metadata key deleted — surface here and are wrapped
    in :class:`PlanCorruptionError` naming the offending path, instead
    of leaking raw ``zipfile`` / ``KeyError`` internals.
    """
    try:
        with np.load(Path(path)) as data:
            arrays = {k: np.asarray(data[k]) for k in data.files}
    except (zipfile.BadZipFile, EOFError, OSError, ValueError) as exc:
        raise PlanCorruptionError(
            f"{path}: plan file is unreadable (truncated or not a "
            f"save_plan archive): {exc}"
        ) from exc
    if "format_version" not in arrays:
        raise PlanCorruptionError(
            f"{path}: plan file is incomplete: format_version is not "
            "a file in the archive"
        )
    version = int(arrays.pop("format_version"))
    if version == 1:
        raise PlanVersionError(
            f"{path}: plan file uses format version 1, which "
            "carried no integrity checksum and can no longer "
            "be trusted or loaded; this build reads versions "
            f"2-{FORMAT_VERSION}.  Re-create the file from the "
            "original permutation with save_plan() or "
            "`python -m repro plan` — planning is "
            "deterministic, so the regenerated schedule is "
            "identical."
        )
    if version not in (2, FORMAT_VERSION):
        raise PlanVersionError(
            f"{path}: unsupported plan format version {version}; "
            f"this build reads versions 2-{FORMAT_VERSION}"
        )
    arrays["format_version"] = np.int64(version)
    if "checksum" not in arrays:
        raise PlanCorruptionError(
            f"{path}: plan file is incomplete: checksum is not a file "
            "in the archive"
        )
    stored = str(arrays.pop("checksum"))
    cert_arr = arrays.pop("certificate", None)
    cert_json = str(cert_arr) if cert_arr is not None else None
    sem_arr = arrays.pop("semantic_certificate", None)
    sem_json = str(sem_arr) if sem_arr is not None else None
    arrays.pop("library_version", None)
    for key in PROVENANCE_KEYS:
        arrays.pop(key, None)
    return version, arrays, stored, cert_json, sem_json


def read_plan_provenance(path) -> dict:
    """The provenance metadata of a plan file, as ``{key: str}``.

    Returns only the :data:`PROVENANCE_KEYS` actually present — an
    empty dict for files written outside the planner (plain
    :func:`save_plan`, legacy v2 files).  Provenance is advisory
    metadata; this helper does **not** verify the plan (use
    :func:`load_plan` for that), but an unreadable file still raises
    :class:`PlanCorruptionError`.
    """
    try:
        with np.load(Path(path)) as data:
            files = set(data.files)
            return {
                key: str(np.asarray(data[key]))
                for key in PROVENANCE_KEYS
                if key in files
            }
    except (zipfile.BadZipFile, EOFError, OSError, ValueError) as exc:
        raise PlanCorruptionError(
            f"{path}: plan file is unreadable (truncated or not a "
            f"save_plan archive): {exc}"
        ) from exc


def load_plan(path):
    """Rebuild a planned engine saved by :func:`save_plan`.

    Verification happens cheapest-first: format version, then the
    SHA-256 content checksum, then the embedded certificate (well-
    formed, bound to this exact payload checksum, positive, and
    matching the plan's ``n``/``width``), then the full structural
    verification — ``plan.verify()`` when the engine provides it, a
    reference-executor differential against the stored permutation
    otherwise — so a corrupted file fails loudly rather than permuting
    silently wrong, and fails *early* rather than after an expensive
    rebuild.  A validated certificate is attached to the returned
    plan's scheduled core as ``certificate``.

    The returned object is whichever engine class the file names —
    version-2 files always hold a
    :class:`~repro.core.scheduled.ScheduledPermutation`.
    """
    with telemetry.span("plan_io.load") as sp:
        try:
            size = Path(path).stat().st_size
        except OSError:
            size = -1
        sp.set(file_bytes=size)
        try:
            plan = _load_plan_inner(path, sp)
        except Exception:
            telemetry.count("plan_io.rejected")
            raise
        telemetry.count("plan_io.loaded")
        return plan


def _load_plan_inner(path, sp):
    version, arrays, stored, cert_json, sem_json = _read_payload(path)
    if version == 2:
        # v2 files predate semantic certificates; any stray
        # semantic_certificate key is ignored.
        return _load_plan_v2(path, arrays, stored, cert_json, sp)
    return _load_plan_v3(path, arrays, stored, cert_json, sem_json, sp)


def _checksum_mismatch(path, stored: str, actual: str) -> PlanCorruptionError:
    return PlanCorruptionError(
        f"{path}: plan checksum mismatch (stored {stored[:12]}..., "
        f"recomputed {actual[:12]}...); the file was corrupted or "
        "tampered with — re-plan from the original permutation"
    )


def _load_plan_v3(path, arrays, stored, cert_json, sem_json, sp):
    actual = plan_checksum(arrays)
    if actual != stored:
        raise _checksum_mismatch(path, stored, actual)
    certificate = None
    if cert_json is not None:
        certificate = _validate_certificate(path, cert_json, actual)
    program = _unpack_program(path, arrays)
    try:
        engine_cls = get_engine(program.engine)
    except ValidationError as exc:
        raise PlanCorruptionError(
            f"{path}: plan file names engine {program.engine!r}, which "
            f"is not in this build's registry: {exc}"
        ) from exc
    p = _restore_narrowed(arrays, "p")
    semantic = None
    if sem_json is not None:
        semantic = _validate_semantic_certificate(
            path, sem_json, actual, program, p
        )
    plan = engine_cls.from_program(program, p)
    if semantic is not None:
        plan.semantic_certificate = semantic
    if certificate is not None:
        certifiable = _certifiable_plan(plan)
        if certifiable is None:
            raise PlanCorruptionError(
                f"{path}: embedded certificate on engine "
                f"{program.engine!r}, which has no certifiable schedule"
            )
        if (certificate.n != certifiable.n
                or certificate.width != certifiable.width):
            raise PlanCorruptionError(
                f"{path}: embedded certificate was issued for n = "
                f"{certificate.n}, w = {certificate.width}, but the "
                f"plan has n = {certifiable.n}, "
                f"w = {certifiable.width}"
            )
        certifiable.certificate = certificate
    with telemetry.span("plan_io.verify", n=program.n):
        verifier = getattr(plan, "verify", None)
        if verifier is not None:
            verifier()
        else:
            _reference_check(path, plan, program)
    sp.set(n=program.n, width=program.width, engine=program.engine,
           certified=certificate is not None,
           semantically_certified=semantic is not None)
    return plan


def _reference_check(path, plan, program: KernelProgram) -> None:
    """Structural check for engines without ``verify()``: the loaded
    program must realise the stored permutation exactly."""
    from repro.exec.reference import ReferenceExecutor

    a = np.arange(program.n, dtype=np.int64)
    out = ReferenceExecutor().run(program, a)
    expected = np.empty_like(a)
    expected[np.asarray(plan.p, dtype=np.int64)] = a
    if not np.array_equal(out, expected):
        raise PlanCorruptionError(
            f"{path}: loaded program does not realise its stored "
            "permutation — the schedule arrays are inconsistent"
        )


def _load_plan_v2(path, arrays, stored, cert_json, sp):
    missing = [key for key in PAYLOAD_KEYS if key not in arrays]
    if missing:
        raise PlanCorruptionError(
            f"{path}: plan file is incomplete: {missing[0]} is not a "
            "file in the archive"
        )
    actual = plan_checksum(arrays, keys=PAYLOAD_KEYS)
    if actual != stored:
        raise _checksum_mismatch(path, stored, actual)
    certificate = None
    if cert_json is not None:
        certificate = _validate_certificate(path, cert_json, actual)
    p = arrays["p"]
    width = int(arrays["width"])
    decomposition = ThreeStepDecomposition(
        gamma1=arrays["gamma1"],
        delta=arrays["delta"],
        gamma3=arrays["gamma3"],
        colors=arrays["colors"],
    )
    m = decomposition.m
    step1 = RowwiseSchedule(
        gamma=decomposition.gamma1, s=arrays["s1"], t=arrays["t1"],
        width=width,
    )
    step2 = ColumnwiseSchedule(
        rowwise=RowwiseSchedule(
            gamma=decomposition.delta, s=arrays["s2"], t=arrays["t2"],
            width=width,
        ),
        transpose=TiledTranspose(m, width),
    )
    step3 = RowwiseSchedule(
        gamma=decomposition.gamma3, s=arrays["s3"], t=arrays["t3"],
        width=width,
    )
    plan = ScheduledPermutation(
        p=p,
        width=width,
        decomposition=decomposition,
        step1=step1,
        step2=step2,
        step3=step3,
        certificate=certificate,
    )
    if certificate is not None and (
        certificate.n != plan.n or certificate.width != width
    ):
        raise PlanCorruptionError(
            f"{path}: embedded certificate was issued for n = "
            f"{certificate.n}, w = {certificate.width}, but the plan "
            f"has n = {plan.n}, w = {width}"
        )
    with telemetry.span("plan_io.verify", n=plan.n):
        plan.verify()
    sp.set(n=plan.n, width=width, engine="scheduled",
           certified=certificate is not None)
    return plan


def _validate_certificate(path, cert_json: str, checksum: str):
    """Parse and police an embedded certificate (all failure modes are
    :class:`PlanCorruptionError` — a bad certificate means the file was
    hand-edited or spliced together from two files)."""
    from repro.staticcheck.certifier import Certificate

    try:
        cert = Certificate.from_json(cert_json)
    except CertificateError as exc:
        raise PlanCorruptionError(
            f"{path}: embedded certificate is malformed: {exc}"
        ) from exc
    if cert.plan_sha != checksum:
        raise PlanCorruptionError(
            f"{path}: embedded certificate is bound to payload "
            f"{str(cert.plan_sha)[:12]}..., not this file's "
            f"{checksum[:12]}... — certificate and payload do not "
            "belong together"
        )
    if not cert.ok:
        assert cert.counterexample is not None
        raise PlanCorruptionError(
            f"{path}: embedded certificate records a conflict "
            f"({cert.counterexample.describe()}); a negative "
            "certificate must never be persisted"
        )
    return cert


def _validate_semantic_certificate(
    path, sem_json: str, checksum: str, program: KernelProgram,
    p: np.ndarray,
):
    """Parse and *re-prove* an embedded semantic certificate.

    Beyond the structural checks (well-formed JSON, bound to this
    payload checksum, positive verdict), the program's denotation is
    recomputed from the unpacked ops and compared against both the
    certificate's digest and the stored permutation — so the
    certificate cannot vouch for a program that no longer denotes its
    permutation, even if the rest of the file is self-consistent.
    """
    from repro.staticcheck.semantics import (
        SemanticCertificate,
        denotation_digest,
        denote_program,
    )

    try:
        cert = SemanticCertificate.from_json(sem_json)
    except CertificateError as exc:
        raise PlanCorruptionError(
            f"{path}: embedded semantic certificate is malformed: {exc}"
        ) from exc
    if cert.plan_sha != checksum:
        raise PlanCorruptionError(
            f"{path}: embedded semantic certificate is bound to "
            f"payload {str(cert.plan_sha)[:12]}..., not this file's "
            f"{checksum[:12]}... — certificate and payload do not "
            "belong together"
        )
    if not cert.ok:
        raise PlanCorruptionError(
            f"{path}: embedded semantic certificate records a "
            f"refutation ({cert.summary()}); a negative certificate "
            "must never be persisted"
        )
    denotation = denote_program(program)
    if not denotation.ok:
        assert denotation.failure is not None
        raise PlanCorruptionError(
            f"{path}: stored program does not denote a permutation "
            f"({denotation.failure.describe()}), but the file carries "
            "a positive semantic certificate"
        )
    if denotation.digest() != cert.denotation_sha:
        raise PlanCorruptionError(
            f"{path}: recomputed program denotation "
            f"{denotation.digest()[:12]}... does not match the "
            f"certified {cert.denotation_sha[:12]}... — the program "
            "was altered after certification"
        )
    stored_p = np.asarray(p, dtype=np.int64)
    if not np.array_equal(denotation.index_map, stored_p):
        raise PlanCorruptionError(
            f"{path}: stored program denotes a different permutation "
            "than the stored p — the schedule arrays are inconsistent"
        )
    if (cert.requested_sha is not None
            and cert.requested_sha != denotation_digest(stored_p)):
        raise PlanCorruptionError(
            f"{path}: embedded semantic certificate was issued for a "
            "different requested permutation than the stored p"
        )
    return cert


# ----------------------------------------------------------------------
# Sealed artifacts (the third compilation tier)
# ----------------------------------------------------------------------

#: Metadata keys of sealed sidecar files — excluded from the payload
#: checksum, like :data:`METADATA_KEYS` for plan files.
SEALED_METADATA_KEYS = (
    "checksum",
    "library_version",
    "semantic_certificate",
    "plan_sha",
    "fingerprint",
    "pipeline",
)


def read_plan_checksum(path) -> str:
    """The stored payload checksum of a plan file (metadata read only).

    The cheap identity the sealed sidecar binds to: no arrays are
    decompressed beyond the checksum string.  Unreadable or
    checksum-less files raise :class:`PlanCorruptionError`.
    """
    try:
        with np.load(Path(path)) as data:
            if "checksum" not in data.files:
                raise PlanCorruptionError(
                    f"{path}: plan file is incomplete: checksum is not "
                    "a file in the archive"
                )
            return str(np.asarray(data["checksum"]))
    except (zipfile.BadZipFile, EOFError, OSError, ValueError) as exc:
        raise PlanCorruptionError(
            f"{path}: plan file is unreadable (truncated or not a "
            f"save_plan archive): {exc}"
        ) from exc


def _zigzag_encode(deltas: np.ndarray) -> np.ndarray:
    """Map signed deltas onto small unsigned values (order-preserving
    in magnitude), so near-sorted gathers narrow to tiny dtypes."""
    d = np.ascontiguousarray(deltas, dtype=np.int64)
    return ((d << 1) ^ (d >> 63)).view(np.uint64)


def _zigzag_decode(codes: np.ndarray) -> np.ndarray:
    zz = np.ascontiguousarray(codes, dtype=np.uint64)
    half = (zz >> np.uint64(1)).view(np.int64)
    sign = (zz & np.uint64(1)).view(np.int64)
    return half ^ -sign


def save_sealed(path, sealed, plan_sha: str | None = None) -> None:
    """Serialise a :class:`~repro.ir.sealed.SealedProgram` to ``path``.

    The gather index is stored **delta-encoded**: zigzagged first
    differences of the (near-sorted for structured permutations)
    gather array, narrowed to the smallest sufficient unsigned dtype —
    a sealed sidecar for ``n = 2^20`` costs a fraction of its ``int64``
    in-memory form.  The scatter map is not stored at all; the loader
    re-derives it as the gather's inverse.

    Integrity mirrors plan files: a SHA-256 checksum over the payload
    keys, the denotation digest of the scatter map as a payload key
    (so a decoded artifact is re-provable), an optional ``plan_sha``
    binding the sidecar to one plan file's payload checksum, and the
    semantic certificate carried by the sealed program embedded as
    metadata.  The artifact is *re-proved on load*; a sealed program
    that fails its own :meth:`verify` is refused unwritten.
    """
    from repro import __version__
    from repro.staticcheck.semantics import denotation_digest

    sealed.verify()
    with telemetry.span(
        "plan_io.save_sealed", n=sealed.n, engine=sealed.engine
    ) as sp:
        deltas = np.diff(sealed.gather, prepend=np.int64(0))
        arrays: dict = {
            "sealed_version": np.int64(SEALED_FORMAT_VERSION),
            "engine": np.str_(sealed.engine),
            "n": np.int64(sealed.n),
            "width": np.int64(sealed.width),
            "denotation_sha": np.str_(
                denotation_digest(sealed.scatter)
            ),
        }
        _store_narrowed(arrays, "gather_delta", _zigzag_encode(deltas))
        rounds = sealed.meta.get("predicted_rounds")
        if isinstance(rounds, int) and rounds > 0:
            arrays["predicted_rounds"] = np.int64(rounds)
        checksum = plan_checksum(
            arrays, keys=tuple(sorted(arrays))
        )
        extra: dict = {}
        bound = plan_sha or sealed.meta.get("plan_sha")
        if bound:
            extra["plan_sha"] = np.str_(str(bound))
        for key in ("fingerprint", "pipeline"):
            if sealed.meta.get(key):
                extra[key] = np.str_(str(sealed.meta[key]))
        if sealed.certificate is not None:
            extra["semantic_certificate"] = np.str_(
                sealed.certificate.to_json()
            )
        np.savez_compressed(
            Path(path),
            checksum=np.str_(checksum),
            library_version=np.str_(__version__),
            **extra,
            **arrays,
        )
        sp.set(file_bytes=Path(path).stat().st_size)
        telemetry.count("plan_io.sealed_saved")


def load_sealed(path, expected_plan_sha: str | None = None):
    """Rebuild and **re-prove** a sealed artifact saved by
    :func:`save_sealed`.

    Verification ladder, cheapest first: payload checksum, delta
    decode, scatter re-derivation, denotation digest comparison
    against the stored ``denotation_sha``, mutual-inverse proof
    (:meth:`~repro.ir.sealed.SealedProgram.verify`), and — when the
    caller knows which plan the sidecar must belong to —
    ``expected_plan_sha`` against the recorded binding.  Any failure
    raises :class:`~repro.errors.PlanCorruptionError`; a sealed
    artifact is a derived cache, so the caller heals by re-sealing
    from the plan, never by trusting the file.
    """
    with telemetry.span("plan_io.load_sealed") as sp:
        try:
            with np.load(Path(path)) as data:
                arrays = {k: np.asarray(data[k]) for k in data.files}
        except (zipfile.BadZipFile, EOFError, OSError, ValueError) as exc:
            telemetry.count("plan_io.sealed_rejected")
            raise PlanCorruptionError(
                f"{path}: sealed artifact is unreadable (truncated or "
                f"not a save_sealed archive): {exc}"
            ) from exc
        try:
            sealed = _decode_sealed(path, arrays, expected_plan_sha)
        except Exception:
            telemetry.count("plan_io.sealed_rejected")
            raise
        sp.set(n=sealed.n, engine=sealed.engine)
        telemetry.count("plan_io.sealed_loaded")
        return sealed


def _decode_sealed(path, arrays: dict, expected_plan_sha: str | None):
    from repro.ir.sealed import SealedProgram, invert_permutation
    from repro.staticcheck.semantics import (
        SemanticCertificate,
        denotation_digest,
    )

    for key in ("checksum", "sealed_version", "n", "gather_delta"):
        if key not in arrays:
            raise PlanCorruptionError(
                f"{path}: sealed artifact is incomplete: {key} is not "
                "a file in the archive"
            )
    version = int(arrays["sealed_version"])
    if version != SEALED_FORMAT_VERSION:
        raise PlanVersionError(
            f"{path}: unsupported sealed format version {version}; "
            f"this build reads version {SEALED_FORMAT_VERSION}"
        )
    stored = str(arrays.pop("checksum"))
    sem_arr = arrays.pop("semantic_certificate", None)
    bound_arr = arrays.pop("plan_sha", None)
    fingerprint_arr = arrays.pop("fingerprint", None)
    pipeline_arr = arrays.pop("pipeline", None)
    arrays.pop("library_version", None)
    actual = plan_checksum(arrays, keys=tuple(sorted(arrays)))
    if actual != stored:
        raise _checksum_mismatch(path, stored, actual)
    if bound_arr is not None and expected_plan_sha is not None:
        if str(bound_arr) != expected_plan_sha:
            raise PlanCorruptionError(
                f"{path}: sealed artifact is bound to plan payload "
                f"{str(bound_arr)[:12]}..., not the expected "
                f"{expected_plan_sha[:12]}... — sidecar and plan do "
                "not belong together"
            )
    n = int(arrays["n"])
    deltas = _zigzag_decode(
        _restore_narrowed(arrays, "gather_delta")
    )
    if deltas.shape[0] != n:
        raise PlanCorruptionError(
            f"{path}: sealed artifact stores {deltas.shape[0]} gather "
            f"deltas for n = {n} — the index data is inconsistent"
        )
    gather = np.cumsum(deltas, dtype=np.int64)
    if n and (int(gather.min()) < 0 or int(gather.max()) >= n):
        raise PlanCorruptionError(
            f"{path}: decoded sealed gather leaves the range "
            f"0..{n - 1} — the index data is corrupted"
        )
    scatter = invert_permutation(gather)
    if str(arrays["denotation_sha"]) != denotation_digest(scatter):
        raise PlanCorruptionError(
            f"{path}: decoded sealed map digests "
            f"{denotation_digest(scatter)[:12]}..., not the stored "
            f"{str(arrays['denotation_sha'])[:12]}... — the artifact "
            "no longer encodes its certified permutation"
        )
    certificate = None
    if sem_arr is not None:
        try:
            certificate = SemanticCertificate.from_json(str(sem_arr))
        except CertificateError as exc:
            raise PlanCorruptionError(
                f"{path}: embedded semantic certificate is malformed: "
                f"{exc}"
            ) from exc
        if not certificate.ok:
            raise PlanCorruptionError(
                f"{path}: embedded semantic certificate records a "
                "refutation; a negative certificate must never be "
                "persisted"
            )
        if certificate.denotation_sha != str(arrays["denotation_sha"]):
            raise PlanCorruptionError(
                f"{path}: embedded semantic certificate digests a "
                "different denotation than the sealed map"
            )
    meta: dict = {"denotation_sha": str(arrays["denotation_sha"])}
    if bound_arr is not None:
        meta["plan_sha"] = str(bound_arr)
    if fingerprint_arr is not None:
        meta["fingerprint"] = str(fingerprint_arr)
    if pipeline_arr is not None:
        meta["pipeline"] = str(pipeline_arr)
    if "predicted_rounds" in arrays:
        meta["predicted_rounds"] = int(arrays["predicted_rounds"])
    sealed = SealedProgram(
        engine=str(arrays.get("engine", "")),
        width=int(arrays.get("width", 0)),
        scatter=scatter,
        gather=gather,
        meta=meta,
        certificate=certificate,
    )
    sealed.verify()
    return sealed
