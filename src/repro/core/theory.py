"""Closed-form round counts and running times (paper Table I) and the
optimality lower bound (Section VII).

Every formula here is checked against the simulator by the test suite
and printed next to measured values by the Table I benchmark.

Notation: ``n`` elements, width ``w``, global latency ``l``, ``d``
DMMs.  The paper states times for the single-UMM view (global rounds
dominate); this module exposes both the paper's forms and the exact
HMM-model totals including the d-fold-parallel shared rounds.
"""

from __future__ import annotations

from repro.errors import SizeError

#: Table I — memory-access rounds per algorithm, by category.
#: (casual rounds are global; the conventional algorithms have exactly
#: one casual round each.)
TABLE1_ROUNDS: dict[str, dict[str, int]] = {
    "d-designated": {
        "casual read": 0, "casual write": 1,
        "coalesced read": 2, "coalesced write": 0,
        "conflict-free read": 0, "conflict-free write": 0,
    },
    "s-designated": {
        "casual read": 1, "casual write": 0,
        "coalesced read": 1, "coalesced write": 1,
        "conflict-free read": 0, "conflict-free write": 0,
    },
    "transpose": {
        "casual read": 0, "casual write": 0,
        "coalesced read": 1, "coalesced write": 1,
        "conflict-free read": 1, "conflict-free write": 1,
    },
    "row-wise": {
        "casual read": 0, "casual write": 0,
        "coalesced read": 3, "coalesced write": 1,
        "conflict-free read": 2, "conflict-free write": 2,
    },
    "column-wise": {
        "casual read": 0, "casual write": 0,
        "coalesced read": 5, "coalesced write": 3,
        "conflict-free read": 4, "conflict-free write": 4,
    },
    "scheduled": {
        "casual read": 0, "casual write": 0,
        "coalesced read": 11, "coalesced write": 5,
        "conflict-free read": 8, "conflict-free write": 8,
    },
}


def total_rounds(algorithm: str) -> int:
    """Total memory-access rounds of an algorithm (32 for scheduled)."""
    try:
        return sum(TABLE1_ROUNDS[algorithm].values())
    except KeyError:
        raise SizeError(
            f"unknown algorithm {algorithm!r}; expected one of "
            f"{sorted(TABLE1_ROUNDS)}"
        ) from None


def _check(n: int, w: int, l: int, d: int = 1) -> None:
    if w < 1 or l < 1 or d < 1:
        raise SizeError("w, l and d must be >= 1")
    if n < 0 or n % w != 0:
        raise SizeError(f"n = {n} must be a non-negative multiple of w = {w}")


def coalesced_round_time(n: int, w: int, l: int, element_cells: int = 1) -> int:
    """Lemma 1: one coalesced global round by ``n`` threads:
    ``k n/w + l - 1`` for ``k``-cell elements (``k = 1``: the paper's
    floats; ``k = 2``: doubles, two transactions per warp)."""
    _check(n, w, l)
    if element_cells < 1:
        raise SizeError(f"element_cells must be >= 1, got {element_cells}")
    return element_cells * (n // w) + l - 1 if n else 0


def conflict_free_round_time(n: int, w: int, d: int = 1) -> int:
    """Lemma 1 on the HMM: one conflict-free shared round by ``n``
    threads spread over ``d`` DMMs: ``n / (d w)`` (shared latency 1).

    Assumes ``d`` divides the block count evenly; use
    :func:`shared_round_time_blocks` for the exact uneven-split cost.
    """
    _check(n, w, 1, d)
    return -(-(n // w) // d) if n else 0


def shared_round_time_blocks(blocks: int, warps_per_block: int, d: int) -> int:
    """Exact conflict-free shared round cost for a kernel of ``blocks``
    blocks of ``warps_per_block`` warps each, assigned round-robin to
    ``d`` DMMs: the busiest DMM holds ``ceil(blocks/d)`` blocks."""
    if blocks < 0 or warps_per_block < 0 or d < 1:
        raise SizeError("blocks, warps_per_block >= 0 and d >= 1 required")
    if blocks == 0:
        return 0
    return -(-blocks // d) * warps_per_block


def casual_round_time(distribution_value: int, l: int) -> int:
    """Lemma 4: a casual global round with distribution ``D``:
    ``D + l - 1``."""
    if distribution_value < 0 or l < 1:
        raise SizeError("distribution must be >= 0 and l >= 1")
    return distribution_value + l - 1 if distribution_value else 0


def conventional_time(
    n: int, w: int, l: int, distribution_value: int, element_cells: int = 1
) -> int:
    """Running time of either conventional algorithm (Table I):
    ``2(n/w + l - 1) + D_w(P) + l - 1`` for single-cell elements.

    For ``k``-cell elements (``k`` dividing ``w``): the payload round
    costs ``k n/w``, the 32-bit index round ``n/w``, and the casual
    round exactly the mixed distribution ``distribution(p, w, w // k)``
    — warps stay ``w`` threads, but each element's ``k`` aligned cells
    land together in a ``w/k``-element group.
    """
    _check(n, w, l)
    return (
        coalesced_round_time(n, w, l, element_cells)   # payload stream
        + coalesced_round_time(n, w, l)                # 32-bit index
        + casual_round_time(distribution_value, l)
    )


def _matrix_side(n: int, w: int) -> int:
    import math

    m = math.isqrt(n)
    if m * m != n or (n and m % w != 0):
        raise SizeError(
            f"n = {n} must be a perfect square with sqrt(n) a multiple of "
            f"w = {w} for the matrix kernels"
        )
    return m


def transpose_time(
    n: int, w: int, l: int, d: int = 1, element_cells: int = 1
) -> int:
    """Transpose (Table I): 2 coalesced global + 2 conflict-free shared
    rounds.  The kernel runs one block of ``w`` warps per ``w x w``
    tile, so the shared rounds cost ``ceil((m/w)²/d) * w`` each.  Both
    global rounds move payload, so they scale with ``element_cells``."""
    _check(n, w, l, d)
    if n == 0:
        return 0
    m = _matrix_side(n, w)
    shared = shared_round_time_blocks((m // w) ** 2, w, d)
    return 2 * coalesced_round_time(n, w, l, element_cells) + 2 * shared


def rowwise_time(
    n: int, w: int, l: int, d: int = 1, element_cells: int = 1
) -> int:
    """Row-wise permutation (Table I): 4 global + 4 shared rounds.  The
    kernel runs one block of ``m/w`` warps per row, so the shared rounds
    cost ``ceil(m/d) * m/w`` each.  Two of the global rounds move
    payload (``a``, ``b``); the other two read the 16-bit ``s``/``t``
    schedules (single-cell)."""
    _check(n, w, l, d)
    if n == 0:
        return 0
    m = _matrix_side(n, w)
    shared = shared_round_time_blocks(m, m // w, d)
    return (
        2 * coalesced_round_time(n, w, l, element_cells)
        + 2 * coalesced_round_time(n, w, l)
        + 4 * shared
    )


def columnwise_time(
    n: int, w: int, l: int, d: int = 1, element_cells: int = 1
) -> int:
    """Column-wise permutation = transpose + row-wise + transpose."""
    return rowwise_time(n, w, l, d, element_cells) + 2 * transpose_time(
        n, w, l, d, element_cells
    )


def scheduled_time(
    n: int, w: int, l: int, d: int = 1, element_cells: int = 1
) -> int:
    """Scheduled permutation, exact HMM model: 16 coalesced global
    rounds (10 payload + 6 schedule-index) + 16 conflict-free shared
    rounds (d-fold parallel)."""
    return 2 * rowwise_time(n, w, l, d, element_cells) + columnwise_time(
        n, w, l, d, element_cells
    )


def scheduled_time_paper(n: int, w: int, l: int) -> int:
    """The paper's headline form ``16(n/w + l - 1)``: the 16 global
    rounds only, shared rounds charged to the DMMs' parallelism."""
    return 16 * coalesced_round_time(n, w, l)


def lower_bound(n: int, w: int, l: int) -> int:
    """Section VII's lower bound: every element must be read once and
    written once; ``w`` cells move per time unit and an access costs
    ``l``: ``2(n/w + l - 1)`` time units."""
    _check(n, w, l)
    return 2 * coalesced_round_time(n, w, l)


def worst_case_crossover(w: int, l: int, d: int = 1) -> float:
    """The ``n`` above which the scheduled algorithm beats the
    conventional one on a worst-case (``D_w = n``) permutation.

    Setting ``2(n/w + l−1) + n + l−1 = 16(n/w + l−1) + 16 n/(wd)``
    gives

        n* = 13 (l − 1) / (1 − 14/w − 16/(wd))

    Returns ``inf`` when the denominator is non-positive (small widths:
    the scheduled algorithm's 32 rounds never pay off).  At the
    GTX-680-like ``w = 32, d = 8, l = 100``: ``n* = 2574`` — matching
    the simulated winner flip between ``n = 1024`` and ``n = 4096``
    (the paper's *measured* crossover sits far higher, at 256K, because
    the L2 cache extends the conventional regime; see the A2 ablation).
    """
    if w < 1 or l < 1 or d < 1:
        raise SizeError("w, l and d must be >= 1")
    denom = 1.0 - 14.0 / w - 16.0 / (w * d)
    if denom <= 0:
        return float("inf")
    return 13.0 * (l - 1) / denom


def optimality_ratio(n: int, w: int, l: int, d: int = 1) -> float:
    """Scheduled time over the lower bound; tends to 8 + 8/d as
    ``n/w >> l`` (16 global + 16/d shared round-equivalents over 2)."""
    lb = lower_bound(n, w, l)
    if lb == 0:
        return 0.0
    return scheduled_time(n, w, l, d) / lb


def inter_dmm_transfer_time(
    elements: int, w: int, l: int, d: int = 1, element_cells: int = 1
) -> int:
    """MCM-style inter-DMM transfer charge for a column exchange.

    "A Many-core Machine Model for Designing Algorithms with Minimum
    Parallelism Overheads" (arXiv 1402.0264) charges data moved between
    workers' private memories at the global-channel rate plus a fixed
    per-transfer latency.  On the HMM the exchanged elements make one
    round trip through the UMM — a coalesced write out of the source
    DMM and a coalesced read into the destination — so ``x`` crossing
    ``k``-cell elements cost ``2 (ceil(k x / w) + l - 1)``.  Free when
    nothing crosses (``x = 0`` or ``d = 1``).
    """
    if elements < 0:
        raise SizeError(f"elements must be >= 0, got {elements}")
    if w < 1 or l < 1 or d < 1:
        raise SizeError("w, l and d must be >= 1")
    if element_cells < 1:
        raise SizeError(f"element_cells must be >= 1, got {element_cells}")
    if elements == 0 or d == 1:
        return 0
    return 2 * (-(-(element_cells * elements) // w) + l - 1)


def sharded_time_breakdown(
    n: int,
    w: int,
    l: int,
    d: int = 1,
    exchange_elements: int | None = None,
    element_cells: int = 1,
) -> dict[str, int]:
    """Model time of the stripe / exchange / stripe scheme over ``d`` DMMs.

    Each DMM holds one stripe of ``s = ceil(n/d)`` elements and runs the
    two stripe-local phases independently; a local phase is one casual
    pass over the stripe (coalesced read + destination-designated
    write), ``2 (ceil(k s / w) + l - 1)`` per phase, and the ``d`` DMMs
    proceed in parallel so the busiest stripe bounds the term.  Between
    the phases the crossing elements pay the
    :func:`inter_dmm_transfer_time` charge; when the exchange volume is
    unknown the worst case ``n (1 - 1/d)`` (every element leaves its
    stripe) is assumed.  Returns ``{"local", "exchange", "total"}``.
    """
    if n < 0:
        raise SizeError(f"n must be >= 0, got {n}")
    if w < 1 or l < 1 or d < 1:
        raise SizeError("w, l and d must be >= 1")
    if element_cells < 1:
        raise SizeError(f"element_cells must be >= 1, got {element_cells}")
    if exchange_elements is None:
        exchange_elements = n - -(-n // d)
    if n == 0:
        return {"local": 0, "exchange": 0, "total": 0}
    s = -(-n // d)
    local = 4 * (-(-(element_cells * s) // w) + l - 1)
    exchange = inter_dmm_transfer_time(
        exchange_elements, w, l, d, element_cells
    )
    return {
        "local": local,
        "exchange": exchange,
        "total": local + exchange,
    }


def sharded_time(
    n: int,
    w: int,
    l: int,
    d: int = 1,
    exchange_elements: int | None = None,
    element_cells: int = 1,
) -> int:
    """Total model time of :func:`sharded_time_breakdown`."""
    return sharded_time_breakdown(
        n, w, l, d, exchange_elements, element_cells
    )["total"]
