"""The scheduled offline permutation — the paper's main contribution.

:class:`ScheduledPermutation` packages the full pipeline:

* **plan** (offline, done once per permutation): the global three-step
  decomposition (Section VII) plus a conflict-free row-wise schedule
  for each of the three passes (Section VI).  The schedules are plain
  arrays — ``s``/``t`` pairs in 16-bit integers, exactly what the
  paper's CUDA implementation stores in global memory.
* **apply** (online): five kernels — row-wise, transpose, row-wise,
  transpose, row-wise — every round coalesced or conflict-free.
* **simulate**: replay on an :class:`~repro.machine.hmm.HMM`, giving
  the 32-round trace whose time is ``16(n/w + l - 1)`` plus the
  (d-fold parallel) shared terms — independent of the permutation.

Example
-------
>>> import numpy as np
>>> from repro import ScheduledPermutation
>>> from repro.permutations import bit_reversal
>>> p = bit_reversal(256)
>>> plan = ScheduledPermutation.plan(p, width=4)
>>> a = np.arange(256.0)
>>> b = plan.apply(a)
>>> expected = np.empty_like(a); expected[p] = a
>>> bool((b == expected).all())
True
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro import telemetry
from repro.core.colwise import ColumnwiseSchedule
from repro.core.rowwise import RowwiseSchedule
from repro.core.scheduler import ThreeStepDecomposition, decompose
from repro.core.transpose import TiledTranspose
from repro.errors import SizeError, ValidationError
from repro.ir.engine import EngineBase
from repro.ir.ops import RowwiseScatter, Transpose
from repro.ir.program import KernelProgram
from repro.ir.registry import register_engine
from repro.machine.hmm import HMM
from repro.machine.memory import TraceRecorder, element_cells_of
from repro.machine.params import MachineParams
from repro.machine.trace import ProgramTrace
from repro.util.validation import check_permutation, check_square, isqrt_exact

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.staticcheck.certifier import Certificate


@register_engine("scheduled")
@dataclass
class ScheduledPermutation(EngineBase):
    """A fully planned optimal offline permutation."""

    p: np.ndarray
    width: int
    decomposition: ThreeStepDecomposition
    step1: RowwiseSchedule
    step2: ColumnwiseSchedule
    step3: RowwiseSchedule
    #: Static conflict-freedom proof, attached by :meth:`certify` or by
    #: :func:`repro.core.io.load_plan` when the file embeds one.
    certificate: "Certificate | None" = field(
        default=None, compare=False, repr=False
    )

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    @classmethod
    def plan(
        cls, p: np.ndarray, width: int = 32, backend: str = "auto"
    ) -> "ScheduledPermutation":
        """Plan the scheduled permutation for ``p``.

        ``len(p)`` must be a perfect square whose root is a multiple of
        ``width``.  ``backend`` picks the König colouring implementation
        for both the global and the per-row colourings.
        """
        p = check_permutation(p)
        n = int(p.shape[0])
        check_square(n, width, "len(p)")
        with telemetry.span("scheduled.plan", n=n, width=width,
                            backend=backend):
            decomposition = decompose(p, backend=backend)
            with telemetry.span("scheduled.plan.step1"):
                step1 = RowwiseSchedule.plan(decomposition.gamma1, width,
                                             backend)
            with telemetry.span("scheduled.plan.step2"):
                step2 = ColumnwiseSchedule.plan(decomposition.delta, width,
                                                backend)
            with telemetry.span("scheduled.plan.step3"):
                step3 = RowwiseSchedule.plan(decomposition.gamma3, width,
                                             backend)
            telemetry.count("plans.scheduled")
        return cls(
            p=p,
            width=width,
            decomposition=decomposition,
            step1=step1,
            step2=step2,
            step3=step3,
        )

    @property
    def n(self) -> int:
        return int(self.p.shape[0])

    @property
    def m(self) -> int:
        return self.decomposition.m

    def schedule_bytes(self) -> int:
        """Total bytes of precomputed schedule data (the offline output).

        Three row-wise passes, each with an ``s`` and a ``t`` array of
        ``n`` entries.
        """
        arrays = (
            self.step1.s, self.step1.t,
            self.step2.rowwise.s, self.step2.rowwise.t,
            self.step3.s, self.step3.t,
        )
        return int(sum(a.nbytes for a in arrays))

    def shared_bytes(self, dtype) -> int:
        """Worst per-block shared-memory footprint across the 5 kernels."""
        return max(
            self.step1.shared_bytes(dtype),
            self.step2.shared_bytes(dtype),
            self.step3.shared_bytes(dtype),
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def apply(
        self, a: np.ndarray, recorder: TraceRecorder | None = None
    ) -> np.ndarray:
        """Permute ``a`` (length ``n``): returns ``b`` with
        ``b[p[i]] == a[i]``.

        Runs the five kernels in sequence; with a recorder attached,
        every one of the 32 access rounds is charged/collected.
        """
        a = np.asarray(a)
        if a.shape != (self.n,):
            raise SizeError(f"a must have shape ({self.n},), got {a.shape}")
        mat = a.reshape(self.m, self.m)
        with telemetry.span("scheduled.apply", n=self.n):
            with telemetry.span("scheduled.step1"):
                mat = self.step1.apply(mat, recorder)  # row-wise
            with telemetry.span("scheduled.step2"):
                # transpose, row-wise, transpose
                mat = self.step2.apply(mat, recorder)
            with telemetry.span("scheduled.step3"):
                mat = self.step3.apply(mat, recorder)  # row-wise
        return mat.reshape(-1)

    def apply_batch(self, batch: np.ndarray) -> np.ndarray:
        """Permute every row of ``batch`` (shape ``(k, n)``) with one
        plan — the throughput mode for workloads like batched FFTs.

        Follows the exact per-element data movement of :meth:`apply`
        (the same schedules drive every pass), vectorised over the
        leading axis; on the HMM each of the ``k`` payloads costs one
        :meth:`simulate` time.
        """
        from repro.exec.batch import BatchExecutor

        return BatchExecutor().run(self.lower_optimized(), batch)

    def simulate(
        self,
        machine: HMM | MachineParams | None = None,
        dtype=np.float32,
    ) -> ProgramTrace:
        """Charge the five kernels on an HMM and return the 32-round trace."""
        from repro.exec.simulator import SimulatorExecutor

        with telemetry.span("scheduled.simulate", n=self.n) as sp:
            trace = SimulatorExecutor().simulate(
                self.lower_optimized(), machine, dtype=dtype
            )
            sp.set(model_time=trace.time, model_rounds=trace.num_rounds)
        return trace

    # ------------------------------------------------------------------
    # IR lowering
    # ------------------------------------------------------------------

    def lower(self) -> KernelProgram:
        """Lower to the canonical five-kernel program of Theorem 2.

        The op labels are the kernel names the static certifier pins
        (``step1.rowwise`` ... ``step3.rowwise``); the schedule arrays
        are the plan's own (no copies), so a lowered program certifies
        and executes bitwise identically to the engine.
        """
        w = self.width
        ops = (
            RowwiseScatter(
                label="step1.rowwise", gamma=self.step1.gamma,
                width=w, s=self.step1.s, t=self.step1.t,
            ),
            Transpose(label="step2.transpose-in", m=self.m, width=w),
            RowwiseScatter(
                label="step2.rowwise", gamma=self.step2.rowwise.gamma,
                width=w, s=self.step2.rowwise.s, t=self.step2.rowwise.t,
            ),
            Transpose(label="step2.transpose-out", m=self.m, width=w),
            RowwiseScatter(
                label="step3.rowwise", gamma=self.step3.gamma,
                width=w, s=self.step3.s, t=self.step3.t,
            ),
        )
        return KernelProgram(engine="scheduled", n=self.n, width=w, ops=ops)

    @classmethod
    def from_program(
        cls, program: KernelProgram, p: np.ndarray
    ) -> "ScheduledPermutation":
        """Rebuild the planned engine from its lowered program.

        The decomposition's colour array is recovered from ``gamma1``
        (an element's colour *is* its intermediate column), so the
        five-kernel program is a complete serialisation.
        """
        ops = program.ops
        if len(ops) != 5 or not (
            isinstance(ops[0], RowwiseScatter)
            and isinstance(ops[1], Transpose)
            and isinstance(ops[2], RowwiseScatter)
            and isinstance(ops[3], Transpose)
            and isinstance(ops[4], RowwiseScatter)
        ):
            raise ValidationError(
                "not a scheduled five-kernel program: "
                f"{[op.kind for op in ops]}"
            )
        width = program.width
        gamma1 = np.ascontiguousarray(ops[0].gamma, dtype=np.int64)
        delta = np.ascontiguousarray(ops[2].gamma, dtype=np.int64)
        gamma3 = np.ascontiguousarray(ops[4].gamma, dtype=np.int64)
        step1 = RowwiseSchedule(
            gamma=gamma1, s=ops[0].s, t=ops[0].t, width=width
        )
        step3 = RowwiseSchedule(
            gamma=gamma3, s=ops[4].s, t=ops[4].t, width=width
        )
        m = int(gamma1.shape[0])
        step2 = ColumnwiseSchedule(
            rowwise=RowwiseSchedule(
                gamma=delta, s=ops[2].s, t=ops[2].t, width=width
            ),
            transpose=TiledTranspose(m, width),
        )
        decomposition = ThreeStepDecomposition(
            gamma1=gamma1,
            delta=delta,
            gamma3=gamma3,
            colors=gamma1.reshape(-1),
        )
        return cls(
            p=np.asarray(p),
            width=width,
            decomposition=decomposition,
            step1=step1,
            step2=step2,
            step3=step3,
        )

    @classmethod
    def predict(
        cls,
        p: np.ndarray,
        params: MachineParams | None = None,
        dtype=np.float32,
    ) -> int | None:
        """Closed-form time ``16(n/w + l - 1) + shared terms``
        (Table I), or ``None`` when ``n`` is not a feasible square or
        the tiles would overflow shared memory."""
        from repro.core import theory

        params = params or MachineParams()
        n = int(np.asarray(p).shape[0])
        w = params.width
        try:
            m = isqrt_exact(n, "n")
        except SizeError:
            return None
        if n == 0 or m % w != 0:
            return None
        if params.shared_capacity is not None:
            shared_needed = 2 * m * np.dtype(dtype).itemsize
            if shared_needed > params.shared_capacity:
                return None
        k = element_cells_of(dtype)
        return theory.scheduled_time(n, w, params.latency,
                                     params.num_dmms, k)

    def inverse(self, backend: str = "auto") -> "ScheduledPermutation":
        """Plan the inverse permutation from this plan's decomposition.

        If this plan realises ``p`` as ``rowwise(g1) ∘ colwise(delta) ∘
        rowwise(g3)``, then ``p⁻¹`` is ``rowwise(g3⁻¹) ∘
        colwise(delta⁻¹) ∘ rowwise(g1⁻¹)`` — the per-row/per-column
        inverses applied in reverse order.  The expensive global König
        colouring is *reused*; only the three cheap bank colourings are
        recomputed for the inverted families.
        """
        m = self.m
        d = self.decomposition

        def invert_rows(arr: np.ndarray) -> np.ndarray:
            out = np.empty_like(arr)
            rows = np.arange(arr.shape[0])[:, None]
            out[rows, arr] = np.broadcast_to(
                np.arange(m, dtype=arr.dtype), arr.shape
            )
            return out

        gamma1_inv = invert_rows(np.asarray(d.gamma3, dtype=np.int64))
        delta_inv = invert_rows(np.asarray(d.delta, dtype=np.int64))
        gamma3_inv = invert_rows(np.asarray(d.gamma1, dtype=np.int64))

        from repro.permutations.ops import invert as invert_perm

        p_inv = invert_perm(self.p)
        # Colour (= intermediate column) of each inverse-route element:
        # the element starting at position q = p[i] travels i's route
        # backwards through the same column.
        colors_inv = np.empty(self.n, dtype=np.int64)
        colors_inv[self.p] = d.colors
        decomposition = ThreeStepDecomposition(
            gamma1=gamma1_inv,
            delta=delta_inv,
            gamma3=gamma3_inv,
            colors=colors_inv,
        )
        decomposition.route(p_inv)
        width = self.width
        return ScheduledPermutation(
            p=p_inv,
            width=width,
            decomposition=decomposition,
            step1=RowwiseSchedule.plan(gamma1_inv, width, backend),
            step2=ColumnwiseSchedule.plan(delta_inv, width, backend),
            step3=RowwiseSchedule.plan(gamma3_inv, width, backend),
        )

    def certify(self) -> "Certificate":
        """Statically prove every access round conflict-free/coalesced.

        Runs :func:`repro.staticcheck.certify_plan` over the plan
        arrays (no simulation), caches the result on
        :attr:`certificate` and returns it.  The certificate may be
        negative — check ``certificate.ok`` — so this never raises on a
        conflicted plan; :func:`repro.core.io.save_plan` enforces
        positivity when persisting.
        """
        from repro.staticcheck.certifier import certify_plan

        self.certificate = certify_plan(self)
        return self.certificate

    def verify(self) -> None:
        """Run every internal consistency check (tests and
        :func:`repro.core.io.load_plan` call this): the decomposition
        must route ``p`` exactly, its colouring must be a proper König
        colouring (each colour class a perfect matching), and every
        row-wise schedule must be conflict-free *and* encode its
        ``gamma``."""
        self.decomposition.route(self.p)
        self.decomposition.verify_coloring(self.p)
        self.step1.verify()
        self.step2.rowwise.verify()
        self.step3.verify()


def scheduled_permute(
    a: np.ndarray, p: np.ndarray, width: int = 32, backend: str = "auto"
) -> np.ndarray:
    """One-shot convenience: plan and apply in one call.

    For repeated permutations with the same ``p`` (the algorithm's
    intended use — "offline" means ``p`` is known in advance), plan once
    with :meth:`ScheduledPermutation.plan` and reuse it.
    """
    return ScheduledPermutation.plan(p, width=width, backend=backend).apply(a)
