"""Conventional offline permutation algorithms (paper Section IV).

Both baselines perform three rounds of memory access; their cost is
dominated by the one *casual* round, whose stage count equals the
permutation's distribution ``D_w(P)`` (Lemma 4):

* **D-designated** — ``for all i: b[p[i]] <- a[i]``: coalesced reads of
  ``a`` and ``p``, casual **write** of ``b``;
* **S-designated** — ``for all i: b[i] <- a[q[i]]`` with ``q = p⁻¹``:
  coalesced read of ``q``, casual **read** of ``a``, coalesced write of
  ``b``.  (On real GPUs the paper finds casual reads cheaper than
  casual writes thanks to cache-coherency effects; in the base model
  they cost the same.)

Like every executor in :mod:`repro.core`, the data movement goes through
:mod:`repro.machine.memory` traced arrays, so applying the algorithm and
simulating its cost share one code path.
"""

from __future__ import annotations

import numpy as np

from repro.ir.engine import EngineBase
from repro.ir.ops import CasualRead, CasualWrite
from repro.ir.program import KernelProgram
from repro.ir.registry import register_engine
from repro.machine.memory import NullRecorder, TraceRecorder, TracedGlobalArray
from repro.machine.params import MachineParams
from repro.machine.requests import coalesced_addresses
from repro.permutations.ops import invert
from repro.util.validation import check_permutation


class ConventionalPermutation(EngineBase):
    """Shared scaffolding for the two conventional baselines."""

    #: Subclasses set the kernel name used in traces.
    kernel_name = "conventional"

    def __init__(self, p: np.ndarray) -> None:
        p = check_permutation(p)
        # The paper stores the permutation as 32-bit int ("at most
        # ceil(log n) <= 32 bits are necessary"); keep that so index
        # reads are charged single-cell bandwidth.
        self.p = (
            # Fixed width is paper-mandated here, not a size assumption.
            p.astype(np.int32)  # staticcheck: ignore[REP103]
            if p.shape[0] <= 2**31
            else p
        )
        self.n = int(self.p.shape[0])

    @classmethod
    def plan(
        cls, p: np.ndarray, width: int = 32, backend: str = "auto"
    ) -> "ConventionalPermutation":
        """Planning is trivial for the baselines: validate and store.

        ``width`` and ``backend`` are accepted (and ignored) so the
        baselines share the registry's planning signature.
        """
        del width, backend
        return cls(p)

    # -- to be provided by subclasses --------------------------------

    def _run(self, a: np.ndarray, recorder: TraceRecorder) -> np.ndarray:
        raise NotImplementedError

    @classmethod
    def _predict_index(cls, p: np.ndarray) -> np.ndarray:
        """The index array whose distribution prices the casual round."""
        raise NotImplementedError

    @classmethod
    def predict(
        cls,
        p: np.ndarray,
        params: MachineParams | None = None,
        dtype=np.float32,
    ) -> int | None:
        """Closed-form three-round time (Lemma 4 / Table I)."""
        from repro.core import theory
        from repro.core.distribution import distribution
        from repro.machine.memory import element_cells_of

        params = params or MachineParams()
        p = check_permutation(p)
        n = int(p.shape[0])
        w = params.width
        if n == 0 or n % w != 0:
            return None
        k = element_cells_of(dtype)
        group = w // k if k <= w and w % k == 0 else 1
        dw = distribution(cls._predict_index(p), w, group)
        return theory.conventional_time(n, w, params.latency, dw, k)

    # -- public API ---------------------------------------------------

    def apply(
        self, a: np.ndarray, recorder: TraceRecorder | None = None
    ) -> np.ndarray:
        """Permute ``a``; optionally record access rounds."""
        a = np.asarray(a)
        if a.shape != (self.n,):
            raise ValueError(
                f"a must have shape ({self.n},), got {a.shape}"
            )
        rec = recorder if recorder is not None else NullRecorder()
        rec.begin_kernel(self.kernel_name)
        out = self._run(a, rec)
        rec.end_kernel()
        return out

    # ``simulate``/``apply_batch`` come from EngineBase: the simulator
    # executor replays the same three rounds this class' ``_run`` emits.


@register_engine("d-designated")
class DDesignatedPermutation(ConventionalPermutation):
    """Destination-designated baseline: ``b[p[i]] <- a[i]``."""

    kernel_name = "d-designated"

    def _run(self, a: np.ndarray, rec: TraceRecorder) -> np.ndarray:
        ga = TracedGlobalArray(a, "a", rec)
        gp = TracedGlobalArray(self.p, "p", rec)
        gb = TracedGlobalArray(np.empty_like(a), "b", rec)
        idx = coalesced_addresses(self.n)
        values = ga.gather(idx)       # coalesced read of a
        dest = gp.gather(idx)         # coalesced read of p
        gb.scatter(dest, values)      # casual write of b
        return gb.data

    def lower(self) -> KernelProgram:
        return KernelProgram(
            engine="d-designated",
            n=self.n,
            width=0,
            ops=(CasualWrite(label=self.kernel_name, p=self.p),),
        )

    @classmethod
    def _predict_index(cls, p: np.ndarray) -> np.ndarray:
        return p


@register_engine("s-designated")
class SDesignatedPermutation(ConventionalPermutation):
    """Source-designated baseline: ``b[i] <- a[q[i]]`` with ``q = p⁻¹``.

    The inverse permutation is computed once at construction (it is part
    of the offline input in the paper: "suppose that q(0..n-1) are
    stored in an array").
    """

    kernel_name = "s-designated"

    def __init__(self, p: np.ndarray) -> None:
        super().__init__(p)
        self.q = invert(self.p).astype(self.p.dtype)

    def _run(self, a: np.ndarray, rec: TraceRecorder) -> np.ndarray:
        ga = TracedGlobalArray(a, "a", rec)
        gq = TracedGlobalArray(self.q, "q", rec)
        gb = TracedGlobalArray(np.empty_like(a), "b", rec)
        idx = coalesced_addresses(self.n)
        src = gq.gather(idx)          # coalesced read of q
        values = ga.gather(src)       # casual read of a
        gb.scatter(idx, values)       # coalesced write of b
        return gb.data

    def lower(self) -> KernelProgram:
        return KernelProgram(
            engine="s-designated",
            n=self.n,
            width=0,
            ops=(CasualRead(label=self.kernel_name, q=self.q),),
        )

    @classmethod
    def _predict_index(cls, p: np.ndarray) -> np.ndarray:
        return invert(p)
