"""Conventional offline permutation algorithms (paper Section IV).

Both baselines perform three rounds of memory access; their cost is
dominated by the one *casual* round, whose stage count equals the
permutation's distribution ``D_w(P)`` (Lemma 4):

* **D-designated** — ``for all i: b[p[i]] <- a[i]``: coalesced reads of
  ``a`` and ``p``, casual **write** of ``b``;
* **S-designated** — ``for all i: b[i] <- a[q[i]]`` with ``q = p⁻¹``:
  coalesced read of ``q``, casual **read** of ``a``, coalesced write of
  ``b``.  (On real GPUs the paper finds casual reads cheaper than
  casual writes thanks to cache-coherency effects; in the base model
  they cost the same.)

Like every executor in :mod:`repro.core`, the data movement goes through
:mod:`repro.machine.memory` traced arrays, so applying the algorithm and
simulating its cost share one code path.
"""

from __future__ import annotations

import numpy as np

from repro.machine.hmm import HMM
from repro.machine.memory import NullRecorder, TraceRecorder, TracedGlobalArray
from repro.machine.params import MachineParams
from repro.machine.requests import coalesced_addresses
from repro.machine.trace import ProgramTrace
from repro.permutations.ops import invert
from repro.util.validation import check_permutation


def _as_hmm(machine: HMM | MachineParams | None) -> HMM:
    if machine is None:
        return HMM()
    if isinstance(machine, MachineParams):
        return HMM(machine)
    return machine


class ConventionalPermutation:
    """Shared scaffolding for the two conventional baselines."""

    #: Subclasses set the kernel name used in traces.
    kernel_name = "conventional"

    def __init__(self, p: np.ndarray) -> None:
        p = check_permutation(p)
        # The paper stores the permutation as 32-bit int ("at most
        # ceil(log n) <= 32 bits are necessary"); keep that so index
        # reads are charged single-cell bandwidth.
        self.p = (
            # Fixed width is paper-mandated here, not a size assumption.
            p.astype(np.int32)  # staticcheck: ignore[REP103]
            if p.shape[0] <= 2**31
            else p
        )
        self.n = int(self.p.shape[0])

    # -- to be provided by subclasses --------------------------------

    def _run(self, a: np.ndarray, recorder: TraceRecorder) -> np.ndarray:
        raise NotImplementedError

    # -- public API ---------------------------------------------------

    def apply(
        self, a: np.ndarray, recorder: TraceRecorder | None = None
    ) -> np.ndarray:
        """Permute ``a``; optionally record access rounds."""
        a = np.asarray(a)
        if a.shape != (self.n,):
            raise ValueError(
                f"a must have shape ({self.n},), got {a.shape}"
            )
        rec = recorder if recorder is not None else NullRecorder()
        rec.begin_kernel(self.kernel_name)
        out = self._run(a, rec)
        rec.end_kernel()
        return out

    def simulate(
        self,
        machine: HMM | MachineParams | None = None,
        dtype=np.float32,
    ) -> ProgramTrace:
        """Charge the algorithm on an HMM and return the cost trace."""
        rec = TraceRecorder(hmm=_as_hmm(machine), name=self.kernel_name)
        self.apply(np.zeros(self.n, dtype=dtype), recorder=rec)
        assert rec.trace is not None
        return rec.trace


class DDesignatedPermutation(ConventionalPermutation):
    """Destination-designated baseline: ``b[p[i]] <- a[i]``."""

    kernel_name = "d-designated"

    def _run(self, a: np.ndarray, rec: TraceRecorder) -> np.ndarray:
        ga = TracedGlobalArray(a, "a", rec)
        gp = TracedGlobalArray(self.p, "p", rec)
        gb = TracedGlobalArray(np.empty_like(a), "b", rec)
        idx = coalesced_addresses(self.n)
        values = ga.gather(idx)       # coalesced read of a
        dest = gp.gather(idx)         # coalesced read of p
        gb.scatter(dest, values)      # casual write of b
        return gb.data


class SDesignatedPermutation(ConventionalPermutation):
    """Source-designated baseline: ``b[i] <- a[q[i]]`` with ``q = p⁻¹``.

    The inverse permutation is computed once at construction (it is part
    of the offline input in the paper: "suppose that q(0..n-1) are
    stored in an array").
    """

    kernel_name = "s-designated"

    def __init__(self, p: np.ndarray) -> None:
        super().__init__(p)
        self.q = invert(self.p).astype(self.p.dtype)

    def _run(self, a: np.ndarray, rec: TraceRecorder) -> np.ndarray:
        ga = TracedGlobalArray(a, "a", rec)
        gq = TracedGlobalArray(self.q, "q", rec)
        gb = TracedGlobalArray(np.empty_like(a), "b", rec)
        idx = coalesced_addresses(self.n)
        src = gq.gather(idx)          # coalesced read of q
        values = ga.gather(src)       # casual read of a
        gb.scatter(idx, values)       # coalesced write of b
        return gb.data
