"""The distribution ``D_w(P)`` of a permutation (paper Section IV).

``D_w(P)`` is the total number of distinct destination address groups
summed over all warps when the D-designated algorithm writes ``b``:

    D_w(P) = sum over warps k of |{ p[i] div w : i in warp k }|

It ranges from ``n/w`` (identity: one group per warp) to ``n`` (every
thread of every warp hits its own group — bit-reversal and transpose
for large enough ``n``).  Lemma 4: the conventional algorithms' casual
round costs exactly ``D_w(P) + l - 1`` time units, so ``D_w`` *is* the
conventional algorithms' performance axis — which is why the paper's
Table III reports ``D_w(P)/n`` alongside the running times.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SizeError
from repro.util.validation import check_permutation


def distribution(p: np.ndarray, width: int, group_width: int | None = None) -> int:
    """Compute ``D_w(P)`` exactly (vectorised, O(n log w)).

    ``len(p)`` must be a multiple of ``width`` (the paper's standing
    assumption; warps are full).

    ``group_width`` (default: ``width``) sets the address-group size in
    *elements* independently of the warp size — used by the
    element-width extension, where ``k``-cell elements shrink the
    effective group to ``w/k`` elements while warps stay ``w`` threads.
    """
    p = check_permutation(p)
    if width < 1:
        raise SizeError(f"width must be >= 1, got {width}")
    group_width = width if group_width is None else group_width
    if group_width < 1:
        raise SizeError(f"group_width must be >= 1, got {group_width}")
    n = p.shape[0]
    if n == 0:
        return 0
    if n % width != 0:
        raise SizeError(f"n = {n} must be a multiple of the width {width}")
    groups = (p // group_width).reshape(n // width, width)
    ordered = np.sort(groups, axis=1)
    distinct = 1 + (ordered[:, 1:] != ordered[:, :-1]).sum(axis=1)
    return int(distinct.sum())


def distribution_fraction(p: np.ndarray, width: int) -> float:
    """``D_w(P) / n`` — the normalised distribution of Table III."""
    p = check_permutation(p)
    if p.shape[0] == 0:
        return 0.0
    return distribution(p, width) / p.shape[0]


def expected_random_distribution(n: int, width: int) -> float:
    """Expected ``D_w(P)`` for a uniformly random permutation.

    Per warp, the ``w`` destinations are a uniform sample *without
    replacement* of ``w`` cells out of ``n``; the chance that a given
    group (of ``w`` cells) is missed is ``C(n-w, w) / C(n, w)``, so

        E[D_w] = (n/w) * (n/w) * (1 - prod_{k<w} (n - w - k)/(n - k))

    For ``n >> w²`` this tends to ``n (1 - eps)`` with
    ``eps ~ (w-1)/(2 n / w)`` — matching Table III's observation that
    ``D_w/n ~ 0.9999`` at ``n = 4M``.
    """
    if width < 1:
        raise SizeError(f"width must be >= 1, got {width}")
    if n == 0:
        return 0.0
    if n % width != 0:
        raise SizeError(f"n = {n} must be a multiple of the width {width}")
    groups = n // width
    k = np.arange(width, dtype=np.float64)
    miss = np.prod((n - width - k) / (n - k))
    return groups * groups * (1.0 - miss)


def theoretical_distribution(name: str, n: int, width: int) -> int:
    """Closed-form ``D_w`` for the named permutations (paper Section IV).

    * identical: ``n/w``;
    * shuffle: every warp's ``w`` destinations span ``2w`` consecutive
      cells, i.e. 2 groups (3 when ``n <= 2w²``-ish boundary cases —
      computed exactly below);
    * bit-reversal and transpose: ``n`` for ``n >= w²`` (every thread
      in a warp lands in its own group), less for smaller ``n``.

    Exact for all sizes: falls back to direct evaluation for the
    regimes where the asymptotic form does not hold yet, so this
    function is *always* equal to ``distribution(named_permutation(...))``
    (property-tested).
    """
    from repro.permutations.named import named_permutation

    key = name.strip().lower().replace("_", "-")
    if key == "identical":
        if n % width:
            raise SizeError(f"n = {n} must be a multiple of the width {width}")
        return n // width
    if key == "shuffle" and width >= 2 and n >= 2 * width:
        # Every warp lies entirely in one half of the array, so its w
        # destinations are w evenly-spaced cells spanning 2w - 1
        # addresses starting at a group-aligned (+0 or +1) offset:
        # exactly 2 distinct groups per warp.
        return 2 * (n // width)
    if key in ("bit-reversal", "transpose") and n >= width * width:
        # Bit-reversal: the warp-local bits become the top group bits.
        # Transpose: a warp's destinations are spaced m >= w apart.
        # Either way every thread lands in its own group.
        return n
    if key == "random":
        raise SizeError(
            "random has no fixed distribution; use "
            "expected_random_distribution"
        )
    return distribution(named_permutation(key, n), width)
