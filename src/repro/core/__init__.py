"""The paper's algorithms: conventional baselines and the scheduled
offline permutation.

* :mod:`repro.core.conventional` — the D-designated (``b[p[i]] = a[i]``)
  and S-designated (``b[i] = a[q[i]]``) baselines (Section IV);
* :mod:`repro.core.transpose` — tiled matrix transpose with the
  diagonal shared-memory arrangement (Section V, Figure 4);
* :mod:`repro.core.rowwise` — conflict-free row-wise permutation driven
  by per-row König bank colourings and the ``s``/``t`` schedule arrays
  (Section VI);
* :mod:`repro.core.colwise` — column-wise permutation as
  transpose ∘ row-wise ∘ transpose (Section VI);
* :mod:`repro.core.scheduler` — the global three-step decomposition via
  König colouring over rows (Section VII, Figure 6);
* :mod:`repro.core.scheduled` — :class:`ScheduledPermutation`, the
  public plan/apply/simulate API for the optimal algorithm;
* :mod:`repro.core.distribution` — the distribution ``D_w(P)`` measure
  (Section IV) with closed forms for the named permutations;
* :mod:`repro.core.theory` — Table I round counts, running-time
  formulas and the optimality lower bound.
"""

from repro.core.conventional import (
    ConventionalPermutation,
    DDesignatedPermutation,
    SDesignatedPermutation,
)
from repro.core.transpose import TiledTranspose
from repro.core.rowwise import RowwiseSchedule
from repro.core.colwise import ColumnwiseSchedule
from repro.core.scheduler import ThreeStepDecomposition, decompose
from repro.core.selector import (
    AutoPermutation,
    predict_sharded,
    predict_times,
    recommend,
)
from repro.core.scheduled import ScheduledPermutation
from repro.core.distribution import (
    distribution,
    distribution_fraction,
    expected_random_distribution,
    theoretical_distribution,
)
from repro.core.dmm_permutation import (
    DMMConventionalPermutation,
    DMMScheduledPermutation,
    bank_distribution,
    worst_case_bank_permutation,
)
from repro.core.io import load_plan, save_plan
from repro.core.padded import PaddedScheduledPermutation, padded_length
from repro.core import theory

__all__ = [
    "AutoPermutation",
    "ColumnwiseSchedule",
    "ConventionalPermutation",
    "DDesignatedPermutation",
    "DMMConventionalPermutation",
    "DMMScheduledPermutation",
    "PaddedScheduledPermutation",
    "RowwiseSchedule",
    "SDesignatedPermutation",
    "ScheduledPermutation",
    "ThreeStepDecomposition",
    "TiledTranspose",
    "bank_distribution",
    "decompose",
    "distribution",
    "distribution_fraction",
    "expected_random_distribution",
    "load_plan",
    "padded_length",
    "predict_sharded",
    "predict_times",
    "recommend",
    "save_plan",
    "theoretical_distribution",
    "theory",
    "worst_case_bank_permutation",
]
