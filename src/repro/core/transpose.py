"""Tiled matrix transpose with the diagonal arrangement (Section V).

A ``m x m`` matrix is partitioned into ``(m/w)²`` tiles of ``w x w``.
Each tile is staged through shared memory using the **diagonal
arrangement** (Figure 4): tile element ``(i, j)`` is stored at shared
address ``i*w + (i + j) mod w``, so

* the elements of one tile **row** sit in ``w`` distinct banks, and
* the elements of one tile **column** also sit in ``w`` distinct banks,

making both the row-major write and the column-major read conflict-free
— four memory-access rounds total (Table I: 1 coalesced read, 1
coalesced write, 1 conflict-free read, 1 conflict-free write).

The naive arrangement (``i*w + j``) is also provided: its column read
is a ``w``-way bank conflict, which the ablation benchmark
(DESIGN.md F4) quantifies.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SizeError
from repro.machine.hmm import HMM
from repro.machine.memory import (
    NullRecorder,
    TraceRecorder,
    TracedGlobalArray,
    TracedSharedArray,
)
from repro.machine.params import MachineParams
from repro.machine.trace import ProgramTrace


class TiledTranspose:
    """Transpose of an ``m x m`` matrix on the HMM.

    Parameters
    ----------
    m:
        Matrix side; must be a multiple of ``width``.
    width:
        Machine width ``w`` (tile side, bank count, warp size).
    diagonal:
        Use the paper's diagonal shared arrangement (default).  With
        ``False`` the naive arrangement is used — correct, but the
        shared read becomes a full ``w``-way bank conflict.
    """

    def __init__(self, m: int, width: int = 32, diagonal: bool = True) -> None:
        if width < 1:
            raise SizeError(f"width must be >= 1, got {width}")
        if m < width or m % width != 0:
            raise SizeError(
                f"matrix side m = {m} must be a positive multiple of the "
                f"width {width}"
            )
        self.m = m
        self.width = width
        self.diagonal = diagonal
        self._build_addresses()

    def _build_addresses(self) -> None:
        """Precompute the four per-thread address streams.

        One block per ``w x w`` tile; block ``(I, J)`` has ``w²``
        threads indexed ``(i, j)``.  Addresses are built once and reused
        by every :meth:`apply` call.
        """
        m, w = self.m, self.width
        mt = m // w                      # tiles per side
        num_blocks = mt * mt
        block = np.arange(num_blocks, dtype=np.int64)
        tile_row = (block // mt)[:, None]    # I
        tile_col = (block % mt)[:, None]     # J
        thread = np.arange(w * w, dtype=np.int64)
        i = (thread // w)[None, :]
        j = (thread % w)[None, :]

        self.num_blocks = num_blocks
        self.block_threads = w * w
        self.read_addr = ((tile_row * w + i) * m + (tile_col * w + j)).reshape(-1)
        self.write_addr = ((tile_col * w + i) * m + (tile_row * w + j)).reshape(-1)
        if self.diagonal:
            slot_write = i * w + (i + j) % w
            slot_read = j * w + (i + j) % w
        else:
            slot_write = i * w + j
            slot_read = j * w + i
        ones = np.ones((num_blocks, 1), dtype=np.int64)
        self.shared_write_addr = (ones * slot_write)
        self.shared_read_addr = (ones * slot_read)

    def shared_bytes(self, dtype) -> int:
        """Shared memory per block: one ``w x w`` tile of ``dtype``."""
        return self.width * self.width * np.dtype(dtype).itemsize

    def apply(
        self, mat: np.ndarray, recorder: TraceRecorder | None = None
    ) -> np.ndarray:
        """Transpose ``mat`` (shape ``(m, m)``), optionally tracing."""
        mat = np.asarray(mat)
        if mat.shape != (self.m, self.m):
            raise SizeError(
                f"matrix must have shape ({self.m}, {self.m}), got {mat.shape}"
            )
        rec = recorder if recorder is not None else NullRecorder()
        ga = TracedGlobalArray(mat, "a", rec)
        gb = TracedGlobalArray(np.empty_like(mat), "b", rec)
        tile = TracedSharedArray(
            self.num_blocks,
            self.block_threads,
            mat.dtype,
            "tile",
            rec,
            block_threads=self.block_threads,
        )
        rec.begin_kernel("transpose", self.shared_bytes(mat.dtype))
        values = ga.gather(self.read_addr)
        tile.scatter(
            self.shared_write_addr,
            values.reshape(self.num_blocks, self.block_threads),
        )
        staged = tile.gather(self.shared_read_addr)
        gb.scatter(self.write_addr, staged.reshape(-1))
        rec.end_kernel()
        return gb.data.reshape(self.m, self.m)

    def simulate(
        self,
        machine: HMM | MachineParams | None = None,
        dtype=np.float32,
    ) -> ProgramTrace:
        """Charge one transpose kernel on an HMM and return the trace."""
        if machine is None:
            machine = HMM()
        elif isinstance(machine, MachineParams):
            machine = HMM(machine)
        rec = TraceRecorder(hmm=machine, name="transpose")
        self.apply(np.zeros((self.m, self.m), dtype=dtype), recorder=rec)
        assert rec.trace is not None
        return rec.trace


def diagonal_slot(i: np.ndarray, j: np.ndarray, width: int) -> np.ndarray:
    """Shared address of tile element ``(i, j)`` under the diagonal
    arrangement: ``i*w + (i + j) mod w`` (Figure 4)."""
    i = np.asarray(i, dtype=np.int64)
    j = np.asarray(j, dtype=np.int64)
    return i * width + (i + j) % width
