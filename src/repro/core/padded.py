"""Arbitrary-length permutation via padding.

The scheduled algorithm needs ``n = m²`` with ``w | m``.  The paper
notes the algorithm "is not restricted to a square matrix" in spirit;
this module makes that concrete for *any* length: embed the length-``n``
permutation into the smallest valid ``N >= n`` by fixing the padding
elements (``p'(i) = i`` for ``i >= n``), plan the padded permutation,
and slice the result.

Overhead: ``N/n <= (1 + w/sqrt(n))²`` — e.g. < 13% for ``n >= 256K`` at
``w = 32``, vanishing as ``n`` grows.  ``padded_length`` exposes the
exact figure so callers can decide.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.core.scheduled import ScheduledPermutation
from repro.errors import SizeError, ValidationError
from repro.ir.engine import EngineBase
from repro.ir.ops import Pad, Slice
from repro.ir.program import KernelProgram
from repro.ir.registry import register_engine
from repro.machine.memory import TraceRecorder
from repro.machine.params import MachineParams
from repro.util.validation import check_permutation


def padded_length(n: int, width: int) -> int:
    """Smallest valid scheduled-permutation size ``N >= n``:
    ``N = (ceil(sqrt(n)/w) * w)²``."""
    if n < 0:
        raise SizeError(f"n must be non-negative, got {n}")
    if width < 1:
        raise SizeError(f"width must be >= 1, got {width}")
    if n == 0:
        return 0
    m = math.isqrt(n)
    if m * m < n:
        m += 1
    m = -(-m // width) * width
    return m * m


@register_engine("padded")
@dataclass
class PaddedScheduledPermutation(EngineBase):
    """A scheduled permutation for arbitrary ``n``, via padding."""

    n: int
    inner: ScheduledPermutation

    @classmethod
    def plan(
        cls, p: np.ndarray, width: int = 32, backend: str = "auto"
    ) -> "PaddedScheduledPermutation":
        """Plan for any permutation length (including non-squares)."""
        p = check_permutation(p)
        n = int(p.shape[0])
        big_n = padded_length(n, width)
        with telemetry.span("padded.plan", n=n, padded_n=big_n) as sp:
            padded = np.concatenate(
                [p, np.arange(n, big_n, dtype=np.int64)]
            )
            inner = ScheduledPermutation.plan(padded, width=width,
                                              backend=backend)
            plan = cls(n=n, inner=inner)
            sp.set(overhead=plan.overhead)
            telemetry.count("plans.padded")
        return plan

    @property
    def padded_n(self) -> int:
        return self.inner.n

    @property
    def p(self) -> np.ndarray:
        """The original (unpadded) permutation."""
        return self.inner.p[: self.n]

    @property
    def width(self) -> int:
        return self.inner.width

    @property
    def overhead(self) -> float:
        """Extra elements moved, as a fraction: ``N/n - 1``."""
        return self.padded_n / self.n - 1.0 if self.n else 0.0

    def apply(
        self, a: np.ndarray, recorder: TraceRecorder | None = None
    ) -> np.ndarray:
        """Permute ``a`` (length ``n``): ``b[p[i]] = a[i]``.

        The padding slots travel as zeros and are sliced away; because
        every real destination is below ``n`` and every padding element
        maps to itself at or above ``n``, the slice is exact.
        """
        a = np.asarray(a)
        if a.shape != (self.n,):
            raise SizeError(f"a must have shape ({self.n},), got {a.shape}")
        with telemetry.span("padded.apply", n=self.n,
                            padded_n=self.padded_n):
            padded = np.zeros(self.padded_n, dtype=a.dtype)
            padded[: self.n] = a
            out = self.inner.apply(padded, recorder)
            return out[: self.n]

    def simulate(self, machine=None, dtype=np.float32):
        """Cost of the padded run (the price actually paid on the HMM).

        The ``pad``/``slice`` ops are free in the model, so this equals
        the inner scheduled plan's 32-round time at ``padded_n``.
        """
        from repro.exec.simulator import SimulatorExecutor

        return SimulatorExecutor().simulate(self.lower_optimized(),
                                            machine, dtype=dtype)

    # ------------------------------------------------------------------
    # IR lowering
    # ------------------------------------------------------------------

    def lower(self) -> KernelProgram:
        """Wrap the inner five-kernel program in ``pad``/``slice``."""
        inner = self.inner.lower()
        ops = (
            Pad(label="pad", n=self.n, padded_n=self.padded_n),
            *inner.ops,
            Slice(label="slice", n=self.n),
        )
        return KernelProgram(
            engine="padded", n=self.n, width=self.inner.width, ops=ops
        )

    @classmethod
    def from_program(
        cls, program: KernelProgram, p: np.ndarray
    ) -> "PaddedScheduledPermutation":
        """Rebuild from a ``pad + five kernels + slice`` program; the
        padded permutation tail is the identity by construction."""
        ops = program.ops
        if (
            len(ops) < 3
            or not isinstance(ops[0], Pad)
            or not isinstance(ops[-1], Slice)
        ):
            raise ValidationError(
                "not a padded program: "
                f"{[op.kind for op in ops]}"
            )
        pad = ops[0]
        inner_program = KernelProgram(
            engine="scheduled",
            n=pad.padded_n,
            width=program.width,
            ops=ops[1:-1],
        )
        padded_p = np.concatenate([
            np.asarray(p, dtype=np.int64),
            np.arange(pad.n, pad.padded_n, dtype=np.int64),
        ])
        inner = ScheduledPermutation.from_program(inner_program, padded_p)
        return cls(n=pad.n, inner=inner)

    @classmethod
    def predict(
        cls,
        p: np.ndarray,
        params: MachineParams | None = None,
        dtype=np.float32,
    ) -> int | None:
        """Scheduled closed-form time at the padded size ``N``."""
        from repro.core import theory
        from repro.machine.memory import element_cells_of

        params = params or MachineParams()
        n = int(np.asarray(p).shape[0])
        try:
            big_n = padded_length(n, params.width)
        except SizeError:
            return None
        if big_n == 0:
            return None
        if params.shared_capacity is not None:
            shared_needed = 2 * math.isqrt(big_n) * np.dtype(dtype).itemsize
            if shared_needed > params.shared_capacity:
                return None
        k = element_cells_of(dtype)
        return theory.scheduled_time(big_n, params.width, params.latency,
                                     params.num_dmms, k)
