"""Global three-step decomposition of a permutation (paper Section VII).

Any permutation ``p`` of ``n = m²`` elements, viewed on the ``m x m``
matrix, factors into

    row-wise (gamma1)  ∘  column-wise (delta)  ∘  row-wise (gamma3)

The factorisation comes from König's theorem applied to the **row
multigraph**: nodes are the ``m`` source rows and the ``m`` destination
rows; each element contributes the edge (its source row -> its
destination row).  The multigraph is ``m``-regular, hence
``m``-edge-colourable, and the colour of an element is the
*intermediate column* it is routed through:

1. edges at one source-row node carry ``m`` distinct colours, so
   "move the element with colour k to column k" is a valid row
   permutation (``gamma1``),
2. edges of one colour form a perfect matching, so the ``m`` elements
   sitting in column ``k`` after step 1 have ``m`` distinct destination
   rows — "move to your destination row" is a valid column permutation
   (``delta``),
3. the elements arriving in destination row ``r`` have distinct
   destination columns, so the final row permutation (``gamma3``) is
   valid.

Figure 6 of the paper walks a 4 x 4 example; the test suite replays it
against this implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.coloring import RegularBipartiteMultigraph, edge_coloring
from repro.coloring.verify import verify_edge_coloring
from repro.errors import ColoringError, SchedulingError
from repro.util.validation import check_permutation, isqrt_exact


@dataclass(frozen=True)
class ThreeStepDecomposition:
    """The three per-row/per-column permutation families.

    Attributes
    ----------
    gamma1:
        ``(m, m)``; ``gamma1[r, c]`` = intermediate column (colour) of
        the element starting at ``(r, c)``.
    delta:
        ``(m, m)``; ``delta[k, r]`` = destination row of the element
        sitting at ``(r, k)`` after step 1 (indexed by column ``k``).
    gamma3:
        ``(m, m)``; ``gamma3[r, k]`` = final column of the element
        sitting at ``(r, k)`` after step 2.
    colors:
        Length-``n`` colour (= intermediate column) per source element.
    """

    gamma1: np.ndarray
    delta: np.ndarray
    gamma3: np.ndarray
    colors: np.ndarray

    @property
    def m(self) -> int:
        return int(self.gamma1.shape[0])

    def route(self, p: np.ndarray) -> None:
        """Check the decomposition routes every element of ``p`` home.

        Symbolically replays the three steps on indices and raises
        :class:`~repro.errors.SchedulingError` on any mismatch — used
        defensively after planning and directly by tests.
        """
        m = self.m
        n = m * m
        i = np.arange(n, dtype=np.int64)
        src_row, src_col = i // m, i % m
        # Step 1: within the source row, move to the colour column.
        col1 = self.gamma1[src_row, src_col]
        # Step 2: within that column, move to the destination row.
        row2 = self.delta[col1, src_row]
        # Step 3: within the destination row, move to the final column.
        col3 = self.gamma3[row2, col1]
        final = row2 * m + col3
        if not np.array_equal(final, np.asarray(p, dtype=np.int64)):
            raise SchedulingError(
                "three-step decomposition does not realise the permutation"
            )

    def verify_coloring(self, p: np.ndarray) -> None:
        """Check the stored colours are a proper König colouring of the
        row multigraph of ``p``.

        :meth:`route` proves the decomposition *moves elements
        correctly*; this proves the stronger structural property the
        paper's Section VII argument rests on — every colour class is a
        perfect matching between source and destination rows — by
        rebuilding the row multigraph and re-verifying the colouring
        against it.  Also checks ``gamma1`` is exactly the colour table
        (the planner derives it by reshape; a corrupted plan file can
        break that).  Raises :class:`~repro.errors.SchedulingError`.
        """
        m = self.m
        n = m * m
        p = np.asarray(p, dtype=np.int64)
        if p.shape != (n,):
            raise SchedulingError(
                f"permutation has length {p.shape}, decomposition "
                f"expects {n}"
            )
        if n == 0:
            return
        i = np.arange(n, dtype=np.int64)
        graph = RegularBipartiteMultigraph.from_edges(
            i // m, p // m, m, m
        )
        try:
            verify_edge_coloring(graph, self.colors, expect_colors=m)
        except ColoringError as exc:
            raise SchedulingError(
                "decomposition colours are not a proper edge colouring "
                f"of the row multigraph: {exc}"
            ) from exc
        if not np.array_equal(
            np.asarray(self.colors, dtype=np.int64).reshape(m, m),
            np.asarray(self.gamma1, dtype=np.int64),
        ):
            raise SchedulingError(
                "gamma1 does not match the colour table it must encode"
            )


def decompose(
    p: np.ndarray, backend: str = "auto"
) -> ThreeStepDecomposition:
    """Factor permutation ``p`` (length a perfect square) into the three
    steps of the scheduled algorithm.

    ``backend`` selects the König colouring implementation (see
    :func:`repro.coloring.edge_coloring`).
    """
    p = check_permutation(p)
    n = p.shape[0]
    m = isqrt_exact(n, "len(p)")
    if m == 0:
        empty = np.empty((0, 0), dtype=np.int64)
        return ThreeStepDecomposition(
            empty, empty, empty, np.empty(0, dtype=np.int64)
        )
    with telemetry.span("plan.decompose", n=int(n), m=m, backend=backend):
        return _decompose_inner(p, n, m, backend)


def _decompose_inner(
    p: np.ndarray, n: int, m: int, backend: str
) -> ThreeStepDecomposition:
    i = np.arange(n, dtype=np.int64)
    src_row = i // m
    dst = p
    dst_row, dst_col = dst // m, dst % m

    graph = RegularBipartiteMultigraph.from_edges(src_row, dst_row, m, m)
    with telemetry.span("plan.decompose.coloring", backend=backend):
        colors = edge_coloring(graph, backend=backend)
        verify_edge_coloring(graph, colors, expect_colors=m)

    # gamma1[r, c] = colour of element (r, c): elements are enumerated
    # row-major, so this is just a reshape.
    gamma1 = colors.reshape(m, m)

    # delta[k, r] = destination row of the element with colour k in
    # source row r.  Each (colour, source row) pair occurs exactly once.
    delta = np.empty((m, m), dtype=np.int64)
    delta[colors, src_row] = dst_row

    # gamma3[r_d, k] = destination column of the element with colour k
    # arriving in destination row r_d.  Each (colour, dest row) pair
    # occurs exactly once (colour classes are perfect matchings).
    gamma3 = np.empty((m, m), dtype=np.int64)
    gamma3[dst_row, colors] = dst_col

    decomposition = ThreeStepDecomposition(
        gamma1=gamma1, delta=delta, gamma3=gamma3, colors=colors
    )
    decomposition.route(p)   # defensive: planning must be exact
    return decomposition
