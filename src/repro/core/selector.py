"""Automatic engine selection.

The paper's bottom line is a *decision rule*: the conventional
algorithm wins when the permutation's distribution is small (or ``n``
is latency-dominated), the scheduled algorithm wins otherwise — and
because the permutation is known offline, the decision can be made by
arithmetic before moving a byte.  This module packages that rule:

* :func:`predict_times` — closed-form time of every engine for a given
  permutation, machine and dtype (no planning, no simulation: just
  ``D_w`` and Table I formulas);
* :func:`recommend` — the engine with the smallest predicted time;
* :class:`AutoPermutation` — plans the recommended engine and exposes
  the usual ``apply``/``simulate`` interface.

The prediction is exact (the formulas are the simulator, pinned by
tests), so ``AutoPermutation`` is never slower than either fixed
choice on the model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.core import theory
from repro.core.distribution import distribution
from repro.errors import SizeError
from repro.ir.program import KernelProgram
from repro.ir.registry import engine_names, get_engine
from repro.machine.hmm import HMM
from repro.machine.memory import TraceRecorder, element_cells_of
from repro.machine.params import MachineParams
from repro.machine.trace import ProgramTrace
from repro.permutations.ops import invert
from repro.util.validation import check_permutation, isqrt_exact


@dataclass(frozen=True)
class EnginePrediction:
    """Predicted model times (time units) for each engine, plus the
    inputs the decision was made from."""

    d_designated: int
    s_designated: int
    scheduled: int | None       #: None when n is not a valid square size
    distribution_value: int
    inverse_distribution_value: int
    best: str

    def as_rows(self) -> list[list[object]]:
        rows: list[list[object]] = [
            ["d-designated", self.d_designated],
            ["s-designated", self.s_designated],
        ]
        if self.scheduled is not None:
            rows.append(["scheduled", self.scheduled])
        return rows


def _scheduled_feasible(n: int, width: int) -> bool:
    try:
        isqrt = isqrt_exact(n, "n")
    except SizeError:
        return False
    return isqrt % width == 0 and n > 0


#: The engines :func:`predict_times` prices and :func:`recommend`
#: chooses between — the HMM engines with closed-form Table I times.
#: The full engine registry (:func:`repro.ir.engine_names`) is larger:
#: it also holds the CPU and single-DMM engines, which have no
#: comparable HMM closed form and so never win the auto selection.
ENGINES = ("scheduled", "padded", "d-designated", "s-designated")


def build_engine(
    name: str,
    p: np.ndarray,
    width: int = 32,
    backend: str = "auto",
):
    """Construct the named engine for permutation ``p``.

    Delegates to the engine registry (:func:`repro.ir.get_engine`), so
    every registered engine — not just the four auto-selectable ones —
    can be built by name.  ``"scheduled"`` and ``"padded"`` run the
    (potentially failing, potentially expensive) offline planning; the
    conventional engines are plain wrappers and cannot fail beyond
    input validation.
    """
    telemetry.count(f"engines.built.{name}" if name in engine_names()
                    else "engines.built.unknown")
    cls = get_engine(name)
    return cls.plan(p, width=width, backend=backend)


def predict_times(
    p: np.ndarray,
    params: MachineParams | None = None,
    dtype=np.float32,
) -> EnginePrediction:
    """Closed-form engine times for permutation ``p`` (O(n), no plan).

    Uses the element-width-aware formulas; the casual rounds use the
    mixed distribution ``D(p, w, w/k)``.
    """
    p = check_permutation(p)
    params = params or MachineParams()
    n = int(p.shape[0])
    w, latency, d = params.width, params.latency, params.num_dmms
    if n % w != 0:
        raise SizeError(f"n = {n} must be a multiple of the width {w}")
    with telemetry.span("selector.predict", n=n) as _sp:
        return _predict_times_inner(p, params, dtype, n, w, latency, d, _sp)


def _predict_times_inner(p, params, dtype, n, w, latency, d, _sp):
    k = element_cells_of(dtype)
    group = w // k if k <= w and w % k == 0 else 1
    dw = distribution(p, w, group)
    dw_inv = distribution(invert(p), w, group)
    conv_d = theory.conventional_time(n, w, latency, dw, k)
    conv_s = theory.conventional_time(n, w, latency, dw_inv, k)
    sched: int | None = None
    if _scheduled_feasible(n, w):
        shared_needed = 2 * isqrt_exact(n) * np.dtype(dtype).itemsize
        cap = params.shared_capacity
        if cap is None or shared_needed <= cap:
            sched = theory.scheduled_time(n, w, latency, d, k)
    candidates: list[tuple[int, str]] = [
        (conv_d, "d-designated"), (conv_s, "s-designated")
    ]
    if sched is not None:
        candidates.append((sched, "scheduled"))
    best = min(candidates)[1]
    _sp.set(best=best, distribution=dw)
    return EnginePrediction(
        d_designated=conv_d,
        s_designated=conv_s,
        scheduled=sched,
        distribution_value=dw,
        inverse_distribution_value=dw_inv,
        best=best,
    )


def predict_sharded(
    p: np.ndarray,
    params: MachineParams | None = None,
    dtype=np.float32,
    ds: tuple[int, ...] = (1, 2, 4, 8),
) -> dict[int, dict[str, int]]:
    """Closed-form ``d``-stripe out-of-core model times (O(n) per d).

    For each shard count in ``ds`` that divides ``n``, prices the
    three-phase row-stripe factorization *for this permutation*: the
    local phases are per-DMM round-priced on stripes of ``n/d``, and
    the inter-DMM exchange is charged for the elements that actually
    cross a stripe boundary (``i // s != p[i] // s``) — the MCM-style
    transfer term, exact rather than worst-case.  Returns
    ``{d: {"local": ..., "exchange": ..., "total": ...}}`` without
    planning anything.
    """
    p = check_permutation(p)
    params = params or MachineParams()
    n = int(p.shape[0])
    w, latency = params.width, params.latency
    k = element_cells_of(dtype)
    src = np.arange(n)
    out: dict[int, dict[str, int]] = {}
    with telemetry.span("selector.predict_sharded", n=n) as sp:
        for d in ds:
            if d < 1 or n % d != 0:
                continue
            s = n // d
            crossing = int(np.count_nonzero(src // s != p // s))
            out[d] = theory.sharded_time_breakdown(
                n, w, latency, d,
                exchange_elements=crossing, element_cells=k,
            )
        sp.set(ds=sorted(out))
    return out


def recommend(
    p: np.ndarray,
    params: MachineParams | None = None,
    dtype=np.float32,
) -> str:
    """The engine name with the smallest predicted time."""
    return predict_times(p, params, dtype).best


def predict_all(
    p: np.ndarray,
    params: MachineParams | None = None,
    dtype=np.float32,
) -> dict[str, int | None]:
    """Closed-form predicted time for *every* registered engine.

    Unlike :func:`predict_times` (which prices only the auto-selectable
    HMM engines), this walks the whole registry; engines with no
    comparable closed form — the CPU and single-DMM families — report
    ``None``.
    """
    params = params or MachineParams()
    return {
        name: get_engine(name).predict(p, params, dtype=dtype)
        for name in engine_names()
    }


def rank_programs(
    engines: list, pipeline=None
) -> list[tuple[int, KernelProgram]]:
    """Rank planned engines by their *optimized* programs' predicted
    stage counts (cheapest first).

    Each engine is lowered through the pass pipeline, so cancelled or
    fused ops lower an engine's rank — the selector compares what the
    executors would actually run, not the raw lowering.  Returns
    ``(predicted_stages, optimized_program)`` pairs sorted ascending.
    """
    ranked: list[tuple[int, KernelProgram]] = []
    for engine in engines:
        program = engine.lower_optimized(pipeline)
        meta = program.meta or {}
        stages = int(meta.get("predicted_stages", program.num_rounds))  # type: ignore[call-overload]
        ranked.append((stages, program))
    ranked.sort(key=lambda pair: pair[0])
    return ranked


class AutoPermutation:  # staticcheck: ignore[REP104]
    """Plan whichever engine the model predicts fastest.

    Mirrors the fixed engines' interface (``apply`` / ``apply_batch`` /
    ``simulate`` / ``lower``) by delegating to the chosen engine; it is
    a selector, not an engine, so it is deliberately not registered.

    With a :class:`~repro.planner.Planner` attached, the chosen engine
    is resolved through the plan cache (memory → disk → cold plan)
    instead of being re-planned, and ``self.engine`` is the planner's
    :class:`~repro.planner.CompiledPermutation` handle.
    """

    def __init__(
        self,
        p: np.ndarray,
        params: MachineParams | None = None,
        dtype=np.float32,
        backend: str = "auto",
        planner=None,
    ) -> None:
        self.params = params or MachineParams()
        self.prediction = predict_times(p, self.params, dtype)
        self.choice = self.prediction.best
        if planner is not None:
            self.engine = planner.compile(
                p, engine=self.choice, width=self.params.width,
                backend=backend,
            )
        else:
            self.engine = build_engine(
                self.choice, p, width=self.params.width, backend=backend
            )

    @property
    def p(self) -> np.ndarray:
        return self.engine.p

    def apply(
        self, a: np.ndarray, recorder: TraceRecorder | None = None
    ) -> np.ndarray:
        return self.engine.apply(a, recorder)

    def apply_batch(self, batch: np.ndarray) -> np.ndarray:
        return self.engine.apply_batch(batch)

    def lower(self) -> KernelProgram:
        return self.engine.lower()

    def simulate(
        self,
        machine: HMM | MachineParams | None = None,
        dtype=np.float32,
    ) -> ProgramTrace:
        return self.engine.simulate(
            machine if machine is not None else self.params, dtype=dtype
        )
