"""Automatic engine selection.

The paper's bottom line is a *decision rule*: the conventional
algorithm wins when the permutation's distribution is small (or ``n``
is latency-dominated), the scheduled algorithm wins otherwise — and
because the permutation is known offline, the decision can be made by
arithmetic before moving a byte.  This module packages that rule:

* :func:`predict_times` — closed-form time of every engine for a given
  permutation, machine and dtype (no planning, no simulation: just
  ``D_w`` and Table I formulas);
* :func:`recommend` — the engine with the smallest predicted time;
* :class:`AutoPermutation` — plans the recommended engine and exposes
  the usual ``apply``/``simulate`` interface.

The prediction is exact (the formulas are the simulator, pinned by
tests), so ``AutoPermutation`` is never slower than either fixed
choice on the model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.core import theory
from repro.core.conventional import (
    DDesignatedPermutation,
    SDesignatedPermutation,
)
from repro.core.distribution import distribution
from repro.core.padded import PaddedScheduledPermutation
from repro.core.scheduled import ScheduledPermutation
from repro.errors import SizeError, ValidationError
from repro.machine.hmm import HMM
from repro.machine.memory import TraceRecorder, element_cells_of
from repro.machine.params import MachineParams
from repro.machine.trace import ProgramTrace
from repro.permutations.ops import invert
from repro.util.validation import check_permutation, isqrt_exact


@dataclass(frozen=True)
class EnginePrediction:
    """Predicted model times (time units) for each engine, plus the
    inputs the decision was made from."""

    d_designated: int
    s_designated: int
    scheduled: int | None       #: None when n is not a valid square size
    distribution_value: int
    inverse_distribution_value: int
    best: str

    def as_rows(self) -> list[list[object]]:
        rows: list[list[object]] = [
            ["d-designated", self.d_designated],
            ["s-designated", self.s_designated],
        ]
        if self.scheduled is not None:
            rows.append(["scheduled", self.scheduled])
        return rows


def _scheduled_feasible(n: int, width: int) -> bool:
    try:
        isqrt = isqrt_exact(n, "n")
    except SizeError:
        return False
    return isqrt % width == 0 and n > 0


#: Engine constructors by name.  Every entry takes the permutation
#: plus planning options and returns an object with the common
#: ``apply(a, recorder)`` / ``simulate(machine, dtype)`` interface.
#: This registry is the single place engines are built — both
#: :class:`AutoPermutation` and the resilient fallback chain
#: (:class:`repro.resilience.ResilientPermutation`) go through it.
ENGINES = ("scheduled", "padded", "d-designated", "s-designated")


def build_engine(
    name: str,
    p: np.ndarray,
    width: int = 32,
    backend: str = "auto",
):
    """Construct the named engine for permutation ``p``.

    ``"scheduled"`` and ``"padded"`` run the (potentially failing,
    potentially expensive) offline planning; the two conventional
    engines are plain wrappers and cannot fail beyond input validation.
    """
    telemetry.count(f"engines.built.{name}" if name in ENGINES
                    else "engines.built.unknown")
    if name == "scheduled":
        return ScheduledPermutation.plan(p, width=width, backend=backend)
    if name == "padded":
        return PaddedScheduledPermutation.plan(p, width=width,
                                               backend=backend)
    if name == "s-designated":
        return SDesignatedPermutation(p)
    if name == "d-designated":
        return DDesignatedPermutation(p)
    raise ValidationError(
        f"unknown engine {name!r}; expected one of {ENGINES}"
    )


def predict_times(
    p: np.ndarray,
    params: MachineParams | None = None,
    dtype=np.float32,
) -> EnginePrediction:
    """Closed-form engine times for permutation ``p`` (O(n), no plan).

    Uses the element-width-aware formulas; the casual rounds use the
    mixed distribution ``D(p, w, w/k)``.
    """
    p = check_permutation(p)
    params = params or MachineParams()
    n = int(p.shape[0])
    w, latency, d = params.width, params.latency, params.num_dmms
    if n % w != 0:
        raise SizeError(f"n = {n} must be a multiple of the width {w}")
    with telemetry.span("selector.predict", n=n) as _sp:
        return _predict_times_inner(p, params, dtype, n, w, latency, d, _sp)


def _predict_times_inner(p, params, dtype, n, w, latency, d, _sp):
    k = element_cells_of(dtype)
    group = w // k if k <= w and w % k == 0 else 1
    dw = distribution(p, w, group)
    dw_inv = distribution(invert(p), w, group)
    conv_d = theory.conventional_time(n, w, latency, dw, k)
    conv_s = theory.conventional_time(n, w, latency, dw_inv, k)
    sched: int | None = None
    if _scheduled_feasible(n, w):
        shared_needed = 2 * isqrt_exact(n) * np.dtype(dtype).itemsize
        cap = params.shared_capacity
        if cap is None or shared_needed <= cap:
            sched = theory.scheduled_time(n, w, latency, d, k)
    candidates: list[tuple[int, str]] = [
        (conv_d, "d-designated"), (conv_s, "s-designated")
    ]
    if sched is not None:
        candidates.append((sched, "scheduled"))
    best = min(candidates)[1]
    _sp.set(best=best, distribution=dw)
    return EnginePrediction(
        d_designated=conv_d,
        s_designated=conv_s,
        scheduled=sched,
        distribution_value=dw,
        inverse_distribution_value=dw_inv,
        best=best,
    )


def recommend(
    p: np.ndarray,
    params: MachineParams | None = None,
    dtype=np.float32,
) -> str:
    """The engine name with the smallest predicted time."""
    return predict_times(p, params, dtype).best


class AutoPermutation:
    """Plan whichever engine the model predicts fastest.

    Mirrors the fixed engines' interface: ``apply(a, recorder)`` and
    ``simulate(machine, dtype)``.
    """

    def __init__(
        self,
        p: np.ndarray,
        params: MachineParams | None = None,
        dtype=np.float32,
        backend: str = "auto",
    ) -> None:
        self.params = params or MachineParams()
        self.prediction = predict_times(p, self.params, dtype)
        self.choice = self.prediction.best
        self.engine = build_engine(
            self.choice, p, width=self.params.width, backend=backend
        )

    def apply(
        self, a: np.ndarray, recorder: TraceRecorder | None = None
    ) -> np.ndarray:
        return self.engine.apply(a, recorder)

    def simulate(
        self,
        machine: HMM | MachineParams | None = None,
        dtype=np.float32,
    ) -> ProgramTrace:
        return self.engine.simulate(
            machine if machine is not None else self.params, dtype=dtype
        )
