"""Pluggable telemetry sinks.

A sink receives every finished span and every counter/gauge update from
a :class:`~repro.telemetry.tracer.Tracer` the moment it happens.  Two
concrete sinks ship with the library:

* :class:`InMemorySink` — collects events into plain lists (the tracer
  itself already aggregates; this sink additionally preserves the raw
  interleaved event stream);
* :class:`JsonlSink` — appends one JSON object per event to a file,
  giving a durable, grep-able, streaming event log
  (``repro profile --events-out events.jsonl``).  Read it back with
  :func:`read_jsonl`.

Exporters that need the *whole* run (Chrome ``trace_event`` JSON,
Prometheus text exposition) live in :mod:`repro.telemetry.export` and
operate on a finished tracer instead.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.telemetry.tracer import Span


def _jsonable(value):
    """Coerce an attribute value to something ``json.dumps`` accepts."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    # NumPy scalars expose .item(); anything else becomes its repr.
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    return repr(value)


def span_event(span: Span) -> dict:
    """The canonical JSON-safe event dict for a finished span."""
    return {
        "type": "span",
        "name": span.name,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "depth": span.depth,
        "start_ns": span.start_ns,
        "end_ns": span.end_ns,
        "duration_ms": span.duration_ms,
        "attributes": {k: _jsonable(v) for k, v in span.attributes.items()},
    }


class Sink:
    """Base sink: every callback is optional (default no-op)."""

    def on_span(self, span: Span) -> None:
        pass

    def on_counter(self, t_ns: int, name: str, delta: float,
                   total: float) -> None:
        pass

    def on_gauge(self, t_ns: int, name: str, value: float) -> None:
        pass


class InMemorySink(Sink):
    """Preserves the raw interleaved event stream in order."""

    def __init__(self) -> None:
        self.events: list[dict] = []

    def on_span(self, span: Span) -> None:
        self.events.append(span_event(span))

    def on_counter(self, t_ns, name, delta, total) -> None:
        self.events.append({"type": "counter", "t_ns": t_ns, "name": name,
                            "delta": delta, "total": total})

    def on_gauge(self, t_ns, name, value) -> None:
        self.events.append({"type": "gauge", "t_ns": t_ns, "name": name,
                            "value": value})


class JsonlSink(Sink):
    """Streams events to ``path`` as JSON Lines; close when done."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._fh = open(self.path, "w", encoding="utf-8")

    def _write(self, event: dict) -> None:
        self._fh.write(json.dumps(event) + "\n")

    def on_span(self, span: Span) -> None:
        self._write(span_event(span))

    def on_counter(self, t_ns, name, delta, total) -> None:
        self._write({"type": "counter", "t_ns": t_ns, "name": name,
                     "delta": delta, "total": total})

    def on_gauge(self, t_ns, name, value) -> None:
        self._write({"type": "gauge", "t_ns": t_ns, "name": name,
                     "value": value})

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def read_jsonl(path) -> list[dict]:
    """Parse a :class:`JsonlSink` event log back into event dicts."""
    events = []
    with open(Path(path), encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
