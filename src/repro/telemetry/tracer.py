"""Structured spans, counters and gauges — the telemetry core.

A :class:`Tracer` records three kinds of signal:

* **spans** — nestable wall-clock intervals with attributes, opened
  with ``with tracer.span("coloring.euler", edges=n):``.  Nesting is
  tracked with a **thread-local** stack, so every finished
  :class:`Span` knows its parent and depth and the whole run renders
  as a tree (or exports to Chrome ``trace_event`` JSON, see
  :mod:`repro.telemetry.export`) even when many threads record spans
  concurrently;
* **counters** — monotonically increasing totals (rows coloured,
  fallback activations, fault detections);
* **gauges** — last-value-wins measurements (plan bytes, overhead
  fractions).

Cross-thread requests (a serving request is admitted on the client
thread and executed on a worker thread) are supported by three
primitives on top of the ``with``-block span:

* :meth:`Tracer.begin` — start a *detached* span that is not pushed
  onto any thread's stack (the request-root span that outlives the
  submitting call);
* :meth:`Tracer.adopt` — push an already-open span onto the *calling*
  thread's stack for the duration of a ``with`` block, so spans opened
  there become its children (the worker-side context hand-off);
* :meth:`Tracer.end` — finish a detached span from any thread.

Everything is collected in memory on the tracer itself (the in-memory
collector of the sink family); additional :class:`~repro.telemetry.sinks.Sink`
objects can stream the same events elsewhere (e.g. a JSONL event log).

The module is deliberately zero-dependency (stdlib only) so the
instrumented hot path — :mod:`repro.core`, :mod:`repro.coloring`,
:mod:`repro.machine` — never pays an import cost for it.  The
*inactive* path is a :class:`NullSpan` singleton: entering and exiting
it does nothing, so uninstrumented runs pay one guarded attribute
check per site (see :func:`repro.telemetry.span`).
"""

from __future__ import annotations

import threading
import time


class Span:
    """One timed, attributed interval in a :class:`Tracer`.

    Spans are context managers: the interval starts at ``__enter__``
    and ends at ``__exit__``; attributes can be attached at creation
    (``tracer.span(name, key=value)``) or later via :meth:`set` —
    the pattern used to bridge model-time numbers (``model_time``,
    ``model_rounds``) into the wall-clock view after simulation.

    ``tid`` is the identity of the thread the span *started* on, so
    exporters can render one track per thread.
    """

    __slots__ = ("name", "span_id", "parent_id", "depth", "tid",
                 "start_ns", "end_ns", "attributes", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, attributes: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attributes = dict(attributes)
        self.span_id = -1
        self.parent_id: int | None = None
        self.depth = 0
        self.tid = 0
        self.start_ns = 0
        self.end_ns: int | None = None

    def set(self, **attributes) -> "Span":
        """Attach (or overwrite) attributes; returns ``self``."""
        self.attributes.update(attributes)
        return self

    @property
    def duration_ns(self) -> int:
        end = self.end_ns if self.end_ns is not None else self.start_ns
        return end - self.start_ns

    @property
    def duration_ms(self) -> float:
        return self.duration_ns / 1e6

    def __enter__(self) -> "Span":
        self._tracer._start(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None and "error" not in self.attributes:
            self.attributes["error"] = exc_type.__name__
        self._tracer._finish(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "open" if self.end_ns is None else f"{self.duration_ms:.3f} ms"
        return f"Span({self.name!r}, {state}, depth={self.depth})"


class NullSpan:
    """Reusable do-nothing span — the inactive-tracer fast path.

    Stateless, hence safe to share and re-enter; every method is a
    no-op so instrumentation sites cost a function call and a guarded
    attribute check when telemetry is off.
    """

    __slots__ = ()

    duration_ns = 0
    duration_ms = 0.0
    name = ""
    attributes: dict = {}

    def set(self, **attributes) -> "NullSpan":
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: The shared no-op span handed out when no tracer is active.
NULL_SPAN = NullSpan()


class Tracer:
    """In-memory telemetry collector with optional streaming sinks.

    Thread-safe: span nesting is tracked per thread (thread-local
    stacks), span-id allocation and the finished-span list are
    lock-guarded, and counters/gauges take the same metrics lock, so
    concurrent server workers can record freely without corrupting
    each other's parent/child trees.

    Parameters
    ----------
    sinks:
        Iterable of :class:`~repro.telemetry.sinks.Sink` objects that
        receive every finished span and every counter/gauge update as
        it happens (the tracer itself always collects in memory).
    clock:
        Nanosecond monotonic clock; injectable for deterministic tests.
    """

    def __init__(self, sinks=(), clock=time.perf_counter_ns) -> None:
        self.sinks = list(sinks)
        self._clock = clock
        self._local = threading.local()
        self._next_id = 0
        # Guards id allocation, the finished-span list and sink
        # dispatch: spans finish concurrently on worker threads.
        self._span_lock = threading.Lock()
        # Counters and gauges are incremented from server worker
        # threads; a read-modify-write without the lock loses updates.
        self._metrics_lock = threading.Lock()
        self.created_ns = clock()
        #: Finished spans in completion order (children before parents
        #: within a thread; interleaved across threads).
        self.spans: list[Span] = []
        #: Counter totals by name.
        self.counters: dict[str, float] = {}
        #: Last gauge value by name.
        self.gauges: dict[str, float] = {}
        #: Counter increments as ``(t_ns, name, delta, total)``.
        self.counter_events: list[tuple[int, str, float, float]] = []
        #: Gauge updates as ``(t_ns, name, value)``.
        self.gauge_events: list[tuple[int, str, float]] = []

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------

    def _stack(self) -> list[Span]:
        """The calling thread's open-span stack (created on demand)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attributes) -> Span:
        """A new span; start/stop happen on ``with`` entry/exit."""
        return Span(self, name, attributes)

    def current(self) -> Span | None:
        """The calling thread's innermost open span, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _allocate_id(self, span: Span) -> None:
        with self._span_lock:
            span.span_id = self._next_id
            self._next_id += 1

    def _start(self, span: Span) -> None:
        self._allocate_id(span)
        stack = self._stack()
        if stack:
            parent = stack[-1]
            span.parent_id = parent.span_id
            span.depth = parent.depth + 1
        stack.append(span)
        span.tid = threading.get_ident()
        span.start_ns = self._clock()

    def _record_finished(self, span: Span) -> None:
        with self._span_lock:
            self.spans.append(span)
        for sink in self.sinks:
            sink.on_span(span)

    def _finish(self, span: Span) -> None:
        span.end_ns = self._clock()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:
            # Out-of-order exit (a caller kept a span open across a
            # sibling): unwind to it rather than corrupt the stack.
            while stack and stack.pop() is not span:
                pass
        self._record_finished(span)

    # -- cross-thread spans -------------------------------------------

    def begin(self, name: str, parent: Span | None = None,
              **attributes) -> Span:
        """Start a *detached* span: open, but on no thread's stack.

        The span nests under ``parent`` when given, else under the
        calling thread's innermost open span.  Finish it — from any
        thread — with :meth:`end`, and hand it to another thread with
        :meth:`adopt` so work there records as its children.
        """
        span = Span(self, name, attributes)
        self._allocate_id(span)
        if parent is None:
            parent = self.current()
        if parent is not None:
            span.parent_id = parent.span_id
            span.depth = parent.depth + 1
        span.tid = threading.get_ident()
        span.start_ns = self._clock()
        return span

    def end(self, span: Span, **attributes) -> Span:
        """Finish a detached span started with :meth:`begin`."""
        if attributes:
            span.attributes.update(attributes)
        if span.end_ns is None:
            span.end_ns = self._clock()
            self._record_finished(span)
        return span

    def adopt(self, span: Span):
        """Make ``span`` the calling thread's current span for a
        ``with`` block — the context hand-off at a thread boundary.

        The span itself is neither started nor finished here; spans
        opened inside the block become its children.
        """
        return _Adoption(self, span)

    # ------------------------------------------------------------------
    # Counters and gauges
    # ------------------------------------------------------------------

    def count(self, name: str, n: float = 1) -> float:
        """Increment counter ``name`` by ``n``; returns the new total.

        Thread-safe: concurrent increments never lose updates.
        """
        with self._metrics_lock:
            total = self.counters.get(name, 0) + n
            self.counters[name] = total
            t = self._clock()
            self.counter_events.append((t, name, n, total))
        for sink in self.sinks:
            sink.on_counter(t, name, n, total)
        return total

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._metrics_lock:
            self.gauges[name] = value
            t = self._clock()
            self.gauge_events.append((t, name, value))
        for sink in self.sinks:
            sink.on_gauge(t, name, value)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def roots(self) -> list[Span]:
        """Finished top-level spans, in start order."""
        return sorted(
            (s for s in self.spans if s.parent_id is None),
            key=lambda s: (s.start_ns, s.span_id),
        )

    def children(self, span: Span) -> list[Span]:
        """Finished direct children of ``span``, in start order."""
        return sorted(
            (s for s in self.spans if s.parent_id == span.span_id),
            key=lambda s: (s.start_ns, s.span_id),
        )

    def find(self, name: str) -> list[Span]:
        """All finished spans with the given name, in completion order."""
        return [s for s in self.spans if s.name == name]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Tracer({len(self.spans)} spans, "
                f"{len(self.counters)} counters, "
                f"{len(self.gauges)} gauges)")


class _Adoption:
    """Context manager pushing an open span onto this thread's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: Tracer, span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._stack().append(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        stack = self._tracer._stack()
        if stack and stack[-1] is self._span:
            stack.pop()
        elif self._span in stack:
            while stack and stack.pop() is not self._span:
                pass
        return False
