"""Exporters over a finished :class:`~repro.telemetry.tracer.Tracer`.

* :func:`chrome_trace` — the Chrome ``trace_event`` JSON object format
  (a ``traceEvents`` list of complete ``"X"`` span events plus ``"C"``
  counter samples), loadable directly in ``chrome://tracing`` or
  https://ui.perfetto.dev; spans render one track per recording
  thread (``tid``), so a concurrent serve shows client, worker and
  scrape threads side by side;
* :func:`validate_chrome_trace` — a structural validator for that
  format, shared by the test suite and the CI smoke job;
* :func:`prometheus_text` — Prometheus text exposition (``# TYPE``
  lines + samples) of the counters and gauges;
* :func:`parse_prometheus_text` / :func:`validate_prometheus_text` —
  parser and structural validator for the exposition format (used by
  the ``repro top`` dashboard and the observability CI smoke);
* :func:`render_span_tree` — indented human-readable tree with
  durations and attributes, used by ``repro profile`` and the
  resilience :class:`~repro.resilience.reporting.FailureReport`.
"""

from __future__ import annotations

import json
import math
import re

from repro.errors import TelemetryError
from repro.telemetry.sinks import _jsonable
from repro.telemetry.tracer import Span, Tracer

#: Chrome trace-event phases this library emits.
_EMITTED_PHASES = ("X", "C", "M")


def _base_ns(tracer: Tracer) -> int:
    starts = [s.start_ns for s in tracer.spans]
    starts.extend(t for t, _n, _d, _t in tracer.counter_events)
    return min(starts) if starts else tracer.created_ns


def _tid_map(tracer: Tracer) -> dict[int, int]:
    """Compact 1-based Chrome tids in first-span order per thread."""
    mapping: dict[int, int] = {}
    for span in sorted(tracer.spans,
                       key=lambda s: (s.start_ns, s.span_id)):
        if span.tid not in mapping:
            mapping[span.tid] = len(mapping) + 1
    return mapping or {0: 1}


def chrome_trace(tracer: Tracer, process_name: str = "repro") -> dict:
    """Export a tracer to the Chrome ``trace_event`` JSON object format.

    Spans become complete (``"X"``) events with microsecond ``ts``
    (relative to the first event) and ``dur``; span attributes travel in
    ``args``.  Each recording thread becomes its own ``tid`` track
    (named via ``thread_name`` metadata).  Counter totals become
    ``"C"`` events at each increment, so Perfetto plots them as a time
    series.
    """
    base = _base_ns(tracer)
    tids = _tid_map(tracer)
    events: list[dict] = [{
        "name": "process_name",
        "ph": "M",
        "pid": 1,
        "tid": 1,
        "ts": 0,
        "args": {"name": process_name},
    }]
    for raw, tid in tids.items():
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "ts": 0,
            "args": {"name": f"thread-{raw}"},
        })
    for span in sorted(tracer.spans, key=lambda s: (s.start_ns, s.span_id)):
        args = {k: _jsonable(v) for k, v in span.attributes.items()}
        args["depth"] = span.depth
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append({
            "name": span.name,
            "cat": "repro",
            "ph": "X",
            "ts": (span.start_ns - base) / 1000.0,
            "dur": span.duration_ns / 1000.0,
            "pid": 1,
            "tid": tids.get(span.tid, 1),
            "args": args,
        })
    for t_ns, name, _delta, total in tracer.counter_events:
        events.append({
            "name": name,
            "cat": "repro",
            "ph": "C",
            "ts": (t_ns - base) / 1000.0,
            "pid": 1,
            "tid": 1,
            "args": {"value": total},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(obj) -> None:
    """Structurally validate a Chrome trace-event JSON object.

    Checks the subset of the trace-event format this library emits
    (and that ``chrome://tracing`` / Perfetto require to load a file):
    a ``traceEvents`` list whose members carry ``name``/``ph``/``pid``,
    numeric non-negative ``ts``, and, for complete (``"X"``) events, a
    numeric non-negative ``dur``.  The object must also be JSON
    serialisable.  Raises :class:`~repro.errors.TelemetryError` on the
    first violation.
    """
    if not isinstance(obj, dict):
        raise TelemetryError(
            f"trace must be a JSON object, got {type(obj).__name__}"
        )
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        raise TelemetryError("trace must have a 'traceEvents' list")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise TelemetryError(f"traceEvents[{i}] is not an object")
        for key, types in (("name", str), ("ph", str), ("pid", int)):
            if not isinstance(event.get(key), types):
                raise TelemetryError(
                    f"traceEvents[{i}] field {key!r} missing or not "
                    f"{types.__name__}: {event.get(key)!r}"
                )
        ph = event["ph"]
        if ph not in _EMITTED_PHASES:
            raise TelemetryError(
                f"traceEvents[{i}] has unexpected phase {ph!r}"
            )
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise TelemetryError(
                f"traceEvents[{i}] 'ts' must be a non-negative number, "
                f"got {ts!r}"
            )
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise TelemetryError(
                    f"traceEvents[{i}] complete event needs a "
                    f"non-negative 'dur', got {dur!r}"
                )
        if "args" in event and not isinstance(event["args"], dict):
            raise TelemetryError(
                f"traceEvents[{i}] 'args' must be an object"
            )
    try:
        json.dumps(obj)
    except (TypeError, ValueError) as exc:
        raise TelemetryError(
            f"trace is not JSON-serialisable: {exc}"
        ) from exc


def validate_span_tree(obj) -> dict[int, list[int]]:
    """Validate the span *forest* inside a Chrome trace export.

    Beyond :func:`validate_chrome_trace`'s per-event checks, this
    verifies the parent/child structure the tracer recorded: every
    ``"X"`` event carries a ``span_id``, every ``parent_id`` refers to
    another exported span, no span is its own ancestor, and parents
    (wall-clock) contain their children's start.  Returns the
    adjacency map ``{span_id: [child ids]}`` so callers can make
    connectivity assertions (e.g. "one request = one connected tree").
    Raises :class:`~repro.errors.TelemetryError` on violation.
    """
    validate_chrome_trace(obj)
    spans = {}
    for i, event in enumerate(obj["traceEvents"]):
        if event.get("ph") != "X":
            continue
        args = event.get("args", {})
        sid = args.get("span_id")
        if not isinstance(sid, int):
            raise TelemetryError(
                f"traceEvents[{i}] 'X' event lacks an integer "
                f"args.span_id: {sid!r}"
            )
        if sid in spans:
            raise TelemetryError(f"duplicate span_id {sid}")
        spans[sid] = (args.get("parent_id"), event)
    children: dict[int, list[int]] = {sid: [] for sid in spans}
    for sid, (parent, event) in spans.items():
        if parent is None:
            continue
        if parent not in spans:
            raise TelemetryError(
                f"span {sid} ({event['name']!r}) has unknown parent "
                f"{parent}"
            )
        children[parent].append(sid)
    # Cycle check: walk each chain to a root.
    for sid in spans:
        seen = set()
        node = sid
        while node is not None:
            if node in seen:
                raise TelemetryError(
                    f"span parent chain from {sid} contains a cycle"
                )
            seen.add(node)
            node = spans[node][0]
    return children


def write_chrome_trace(tracer: Tracer, path,
                       process_name: str = "repro") -> dict:
    """Export, validate and write the Chrome trace to ``path``."""
    obj = chrome_trace(tracer, process_name)
    validate_chrome_trace(obj)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(obj, fh, indent=1)
    return obj


_METRIC_NAME = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str) -> str:
    sanitized = _METRIC_NAME.sub("_", name)
    if not sanitized or not (sanitized[0].isalpha() or sanitized[0] == "_"):
        sanitized = "_" + sanitized
    return f"repro_{sanitized}"


def prometheus_text(tracer: Tracer) -> str:
    """Prometheus text exposition of the tracer's counters and gauges.

    Counter names additionally get the conventional ``_total`` suffix.
    Span durations are summarised as one gauge per span name
    (``repro_span_<name>_ms_sum``) so phase times are scrapeable too.
    """
    lines: list[str] = []
    for name in sorted(tracer.counters):
        metric = _metric_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {tracer.counters[name]:g}")
    for name in sorted(tracer.gauges):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {tracer.gauges[name]:g}")
    durations: dict[str, float] = {}
    for span in tracer.spans:
        durations[span.name] = durations.get(span.name, 0.0) + span.duration_ms
    for name in sorted(durations):
        metric = _metric_name(f"span.{name}.ms") + "_sum"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {durations[name]:g}")
    return "\n".join(lines) + ("\n" if lines else "")


#: ``name{labels} value`` sample line (exposition format 0.0.4).
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<ts>-?\d+))?$"
)
_LABEL_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)
_VALID_TYPES = frozenset(
    {"counter", "gauge", "histogram", "summary", "untyped"}
)


def _parse_value(raw: str) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    return float(raw)


def parse_prometheus_text(text: str) -> dict[str, dict]:
    """Parse Prometheus text exposition into metric families.

    Returns ``{metric_name: {"type": kind, "samples":
    [(labels_dict, value), ...]}}`` where ``metric_name`` is the
    *sample* name (so a histogram family ``x`` contributes
    ``x_bucket`` / ``x_sum`` / ``x_count`` entries typed
    ``histogram``).  Raises :class:`~repro.errors.TelemetryError` on
    any malformed line — this doubles as the format validator for the
    CI smoke job (:func:`validate_prometheus_text`).
    """
    families: dict[str, dict] = {}
    declared: dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.rstrip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise TelemetryError(
                    f"line {lineno}: malformed TYPE line: {line!r}"
                )
            _, _, name, kind = parts
            if kind not in _VALID_TYPES:
                raise TelemetryError(
                    f"line {lineno}: unknown metric type {kind!r}"
                )
            declared[name] = kind
            continue
        if line.startswith("#"):
            continue   # HELP and comments
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise TelemetryError(
                f"line {lineno}: malformed sample line: {line!r}"
            )
        name = m.group("name")
        labels: dict[str, str] = {}
        raw_labels = m.group("labels")
        if raw_labels:
            consumed = 0
            for lm in _LABEL_RE.finditer(raw_labels):
                labels[lm.group("key")] = (
                    lm.group("value")
                    .replace('\\"', '"')
                    .replace("\\n", "\n")
                    .replace("\\\\", "\\")
                )
                consumed += len(lm.group(0))
            stripped = re.sub(r"[,\s]", "", raw_labels)
            rebuilt = len(stripped)
            matched = sum(
                len(re.sub(r"[,\s]", "", lm.group(0)))
                for lm in _LABEL_RE.finditer(raw_labels)
            )
            if matched != rebuilt:
                raise TelemetryError(
                    f"line {lineno}: malformed labels: "
                    f"{raw_labels!r}"
                )
        try:
            value = _parse_value(m.group("value"))
        except ValueError as exc:
            raise TelemetryError(
                f"line {lineno}: bad sample value "
                f"{m.group('value')!r}"
            ) from exc
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and \
                    name[: -len(suffix)] in declared:
                base = name[: -len(suffix)]
                break
        kind = declared.get(base, "untyped")
        family = families.setdefault(
            name, {"type": kind, "samples": []}
        )
        family["samples"].append((labels, value))
    return families


def validate_prometheus_text(text: str) -> dict[str, dict]:
    """Validate exposition text; returns the parsed families.

    A convenience alias of :func:`parse_prometheus_text` whose name
    states the intent at call sites (tests, CI smoke).
    """
    return parse_prometheus_text(text)


def _format_attrs(span: Span, keys=None) -> str:
    items = span.attributes.items()
    if keys is not None:
        items = [(k, v) for k, v in items if k in keys]
    if not items:
        return ""
    body = ", ".join(f"{k}={_jsonable(v)}" for k, v in items)
    return f"  [{body}]"


def render_span_tree(tracer: Tracer, attr_keys=None) -> str:
    """Indented tree of all finished spans with durations.

    ``attr_keys`` restricts which attributes are shown (all by
    default).  Orphan spans (parent never finished) render as roots.
    """
    finished = {s.span_id for s in tracer.spans}
    by_parent: dict[int | None, list[Span]] = {}
    for span in tracer.spans:
        parent = (span.parent_id
                  if span.parent_id in finished else None)
        by_parent.setdefault(parent, []).append(span)

    lines: list[str] = []

    def emit(span: Span, indent: int) -> None:
        lines.append(
            f"{'  ' * indent}{span.name}  {span.duration_ms:.3f} ms"
            f"{_format_attrs(span, attr_keys)}"
        )
        for child in sorted(by_parent.get(span.span_id, ()),
                            key=lambda s: (s.start_ns, s.span_id)):
            emit(child, indent + 1)

    for root in sorted(by_parent.get(None, ()),
                       key=lambda s: (s.start_ns, s.span_id)):
        emit(root, 0)
    return "\n".join(lines)
