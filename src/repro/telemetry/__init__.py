"""repro.telemetry — spans, metrics, SLOs and a flight recorder.

The observability layer of the reproduction, in four tiers:

* **tracer** (:class:`Tracer`) — nestable wall-clock spans with
  thread-local nesting, cross-thread hand-off (:func:`begin_span` /
  :func:`end_span` / :func:`request_scope`), monotonic counters and
  gauges, pluggable sinks (in-memory, JSONL) and exporters (Chrome
  ``trace_event`` JSON, Prometheus text);
* **request context** (:class:`RequestContext`) — the identity one
  serving request carries across threads; while bound, module-level
  :func:`span` tags every span with the ``request_id``;
* **metrics** (:class:`MetricsRegistry`) — labeled counters, gauges
  and log-bucketed mergeable :class:`Histogram` instruments for
  cross-request distributions (p50/p99/p999), exposable over HTTP
  (:class:`MetricsHTTPServer`) and renderable as a terminal dashboard
  (:func:`render_dashboard`, ``repro top``);
* **SLO + flight recorder** (:class:`SLOMonitor`,
  :class:`FlightRecorder`) — rolling-window objectives with
  error-budget burn rate, and a bounded ring of structured events that
  dumps a post-mortem bundle on breach.

See ``docs/observability.md``.

Instrumented library code calls the *module-level* :func:`span`,
:func:`count` and :func:`gauge`, which dispatch to the process-wide
active tracer.  By default there is **no** active tracer and each call
reduces to one guarded attribute check returning a shared no-op span —
the hot path stays effectively uninstrumented until someone opts in:

>>> from repro import telemetry
>>> tracer = telemetry.Tracer()
>>> with telemetry.use_tracer(tracer):
...     with telemetry.span("phase", n=64) as sp:
...         telemetry.count("things.done")
>>> [s.name for s in tracer.spans]
['phase']
>>> tracer.counters
{'things.done': 1}

``python -m repro profile <perm>`` wires this up end to end and writes
the exportable artefacts; ``python -m repro serve-demo --concurrent``
adds the serving metrics, ``/metrics`` endpoint and flight recorder.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.telemetry.context import (
    RequestContext,
    current_context,
    set_context,
    use_context,
)
from repro.telemetry.dashboard import histogram_series, render_dashboard
from repro.telemetry.export import (
    chrome_trace,
    parse_prometheus_text,
    prometheus_text,
    render_span_tree,
    validate_chrome_trace,
    validate_prometheus_text,
    validate_span_tree,
    write_chrome_trace,
)
from repro.telemetry.httpd import MetricsHTTPServer
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    quantile_from_buckets,
)
from repro.telemetry.recorder import FlightRecorder
from repro.telemetry.sinks import (
    InMemorySink,
    JsonlSink,
    Sink,
    read_jsonl,
    span_event,
)
from repro.telemetry.slo import SLO, SLOMonitor
from repro.telemetry.tracer import NULL_SPAN, NullSpan, Span, Tracer

#: The process-wide active tracer; ``None`` means telemetry is off.
_ACTIVE: Tracer | None = None


def get_tracer() -> Tracer | None:
    """The currently active tracer, or ``None`` when telemetry is off."""
    return _ACTIVE


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install ``tracer`` as the active tracer; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


@contextmanager
def use_tracer(tracer: Tracer | None):
    """Activate ``tracer`` for the duration of the ``with`` block."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def span(name: str, **attributes):
    """A span on the active tracer (shared no-op span when inactive).

    When the calling thread has a bound :class:`RequestContext`
    (:func:`use_context` / :func:`request_scope`), the span is tagged
    with its ``request_id`` automatically.
    """
    tracer = _ACTIVE
    if tracer is None:
        return NULL_SPAN
    ctx = current_context()
    if ctx is not None and "request_id" not in attributes:
        attributes["request_id"] = ctx.request_id
    return tracer.span(name, **attributes)


def begin_span(name: str, parent=None, **attributes):
    """Start a *detached* span on the active tracer.

    Returns :data:`NULL_SPAN` when telemetry is off, so call sites can
    unconditionally hold the result and later pass it to
    :func:`end_span`.  ``parent`` may be another detached span (or
    ``None`` to nest under the calling thread's current span).
    """
    tracer = _ACTIVE
    if tracer is None:
        return NULL_SPAN
    ctx = current_context()
    if ctx is not None and "request_id" not in attributes:
        attributes["request_id"] = ctx.request_id
    if isinstance(parent, NullSpan):
        parent = None
    return tracer.begin(name, parent=parent, **attributes)


def end_span(span_obj, **attributes):
    """Finish a span from :func:`begin_span` (no-op for the null span)."""
    tracer = _ACTIVE
    if tracer is None or isinstance(span_obj, NullSpan):
        return span_obj
    return tracer.end(span_obj, **attributes)


@contextmanager
def request_scope(ctx: RequestContext | None):
    """Activate a request's context *and* span on the calling thread.

    The worker-side half of cross-thread propagation: binds ``ctx``
    thread-locally (so :func:`span` tags ``request_id``) and adopts the
    request's root span onto this thread's stack (so spans opened here
    become its children).  A ``None`` context, inactive tracer, or
    context without a real root span each degrade gracefully to
    whatever subset applies.
    """
    tracer = _ACTIVE
    root = ctx.span if ctx is not None else None
    adoptable = (
        tracer is not None
        and isinstance(root, Span)
    )
    with use_context(ctx):
        if adoptable:
            with tracer.adopt(root):
                yield ctx
        else:
            yield ctx


def count(name: str, n: float = 1) -> None:
    """Increment a counter on the active tracer (no-op when inactive)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.count(name, n)


def gauge(name: str, value: float) -> None:
    """Set a gauge on the active tracer (no-op when inactive)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.gauge(name, value)


__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "JsonlSink",
    "MetricsHTTPServer",
    "MetricsRegistry",
    "NULL_SPAN",
    "NullSpan",
    "RequestContext",
    "SLO",
    "SLOMonitor",
    "Sink",
    "Span",
    "Tracer",
    "begin_span",
    "chrome_trace",
    "count",
    "current_context",
    "end_span",
    "gauge",
    "get_tracer",
    "histogram_series",
    "parse_prometheus_text",
    "prometheus_text",
    "quantile_from_buckets",
    "read_jsonl",
    "render_dashboard",
    "render_span_tree",
    "request_scope",
    "set_context",
    "set_tracer",
    "span",
    "span_event",
    "use_context",
    "use_tracer",
    "validate_chrome_trace",
    "validate_prometheus_text",
    "validate_span_tree",
    "write_chrome_trace",
]
