"""repro.telemetry — structured spans, counters and exportable traces.

The observability layer of the reproduction: a zero-dependency tracer
(:class:`Tracer`) with nestable wall-clock spans, monotonic counters
and gauges, pluggable sinks (in-memory, JSONL event log) and exporters
(Chrome ``trace_event`` JSON for ``chrome://tracing``/Perfetto,
Prometheus text exposition).  See ``docs/observability.md``.

Instrumented library code calls the *module-level* :func:`span`,
:func:`count` and :func:`gauge`, which dispatch to the process-wide
active tracer.  By default there is **no** active tracer and each call
reduces to one guarded attribute check returning a shared no-op span —
the hot path stays effectively uninstrumented until someone opts in:

>>> from repro import telemetry
>>> tracer = telemetry.Tracer()
>>> with telemetry.use_tracer(tracer):
...     with telemetry.span("phase", n=64) as sp:
...         telemetry.count("things.done")
>>> [s.name for s in tracer.spans]
['phase']
>>> tracer.counters
{'things.done': 1}

``python -m repro profile <perm>`` wires this up end to end and writes
the exportable artefacts.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.telemetry.export import (
    chrome_trace,
    prometheus_text,
    render_span_tree,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.telemetry.sinks import (
    InMemorySink,
    JsonlSink,
    Sink,
    read_jsonl,
    span_event,
)
from repro.telemetry.tracer import NULL_SPAN, NullSpan, Span, Tracer

#: The process-wide active tracer; ``None`` means telemetry is off.
_ACTIVE: Tracer | None = None


def get_tracer() -> Tracer | None:
    """The currently active tracer, or ``None`` when telemetry is off."""
    return _ACTIVE


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install ``tracer`` as the active tracer; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


@contextmanager
def use_tracer(tracer: Tracer | None):
    """Activate ``tracer`` for the duration of the ``with`` block."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def span(name: str, **attributes):
    """A span on the active tracer (shared no-op span when inactive)."""
    tracer = _ACTIVE
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attributes)


def count(name: str, n: float = 1) -> None:
    """Increment a counter on the active tracer (no-op when inactive)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.count(name, n)


def gauge(name: str, value: float) -> None:
    """Set a gauge on the active tracer (no-op when inactive)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.gauge(name, value)


__all__ = [
    "InMemorySink",
    "JsonlSink",
    "NULL_SPAN",
    "NullSpan",
    "Sink",
    "Span",
    "Tracer",
    "chrome_trace",
    "count",
    "gauge",
    "get_tracer",
    "prometheus_text",
    "read_jsonl",
    "render_span_tree",
    "set_tracer",
    "span",
    "span_event",
    "use_tracer",
    "validate_chrome_trace",
    "write_chrome_trace",
]
