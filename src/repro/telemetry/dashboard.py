"""Terminal dashboard over a Prometheus exposition (``repro top``).

Works from *exposition text only* — the same ``/metrics`` payload any
Prometheus server scrapes — so one code path serves both modes of
``repro top``: scraping a live ``--url`` and rendering an embedded
demo server.  Histogram quantiles are re-estimated from the cumulative
``le`` buckets with the standard ``histogram_quantile`` interpolation
(:func:`~repro.telemetry.metrics.quantile_from_buckets`), exactly what
a Grafana panel would do.
"""

from __future__ import annotations

import math

from repro.telemetry.export import parse_prometheus_text
from repro.telemetry.metrics import quantile_from_buckets

__all__ = [
    "histogram_series",
    "render_dashboard",
]


def _labels_sans_le(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(
        (k, v) for k, v in labels.items() if k != "le"
    ))


def histogram_series(families: dict[str, dict]) -> dict:
    """Regroup parsed histogram samples by base metric and label set.

    Returns ``{base_name: {label_tuple: {"buckets": [(le, count)...],
    "sum": float, "count": float}}}`` where ``label_tuple`` is the
    sorted ``(key, value)`` tuple without ``le`` and buckets are
    sorted ascending (``+Inf`` last).
    """
    out: dict[str, dict] = {}
    for name, family in families.items():
        if family["type"] != "histogram":
            continue
        for suffix, field in (("_bucket", "buckets"), ("_sum", "sum"),
                              ("_count", "count")):
            if not name.endswith(suffix):
                continue
            base = name[: -len(suffix)]
            series = out.setdefault(base, {})
            for labels, value in family["samples"]:
                key = _labels_sans_le(labels)
                row = series.setdefault(
                    key, {"buckets": [], "sum": 0.0, "count": 0.0}
                )
                if field == "buckets":
                    le = labels.get("le", "+Inf")
                    bound = (math.inf if le == "+Inf" else float(le))
                    row["buckets"].append((bound, value))
                else:
                    row[field] = value
    for series in out.values():
        for row in series.values():
            row["buckets"].sort(key=lambda b: b[0])
    return out


def _fmt_labels(key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return "(all)"
    return ",".join(f"{k}={v}" for k, v in key)


def _fmt_seconds(value: float) -> str:
    if value <= 0:
        return "0"
    if value < 1e-3:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.2f}ms"
    return f"{value:.3f}s"


def _sparkline(buckets: list[tuple[float, float]], width: int = 24) -> str:
    """A unicode bar chart of the (non-cumulative) bucket counts."""
    if not buckets:
        return ""
    finite = [(le, c) for le, c in buckets if not math.isinf(le)]
    if not finite:
        finite = buckets
    counts = []
    prev = 0.0
    for _le, cum in finite:
        counts.append(max(0.0, cum - prev))
        prev = cum
    if len(counts) > width:
        # Fold adjacent buckets so the sparkline fits.
        folded = [0.0] * width
        for i, c in enumerate(counts):
            folded[i * width // len(counts)] += c
        counts = folded
    peak = max(counts) if counts else 0.0
    if peak <= 0:
        return ""
    blocks = " ▁▂▃▄▅▆▇█"
    return "".join(
        blocks[min(8, int(math.ceil(c / peak * 8)))] for c in counts
    )


def render_dashboard(text: str, title: str = "repro top") -> str:
    """Render exposition ``text`` as a fixed-width terminal dashboard.

    Sections: histograms (count / mean / p50 / p90 / p99 + a bucket
    sparkline per label set), then counters, then gauges.  Returns the
    dashboard as a string so callers decide how to paint the screen.
    """
    families = parse_prometheus_text(text)
    lines = [title, "=" * len(title)]

    histograms = histogram_series(families)
    if histograms:
        lines.append("")
        lines.append("latency / size distributions")
        lines.append("-" * 70)
        header = (f"  {'series':<44}{'count':>7}{'mean':>9}"
                  f"{'p50':>9}{'p90':>9}{'p99':>9}")
        lines.append(header)
        for base in sorted(histograms):
            lines.append(f"{base}")
            for key in sorted(histograms[base]):
                row = histograms[base][key]
                buckets = row["buckets"]
                count = row["count"] or (
                    buckets[-1][1] if buckets else 0.0
                )
                mean = (row["sum"] / count) if count else 0.0
                p50 = quantile_from_buckets(buckets, 0.50)
                p90 = quantile_from_buckets(buckets, 0.90)
                p99 = quantile_from_buckets(buckets, 0.99)
                lines.append(
                    f"  {_fmt_labels(key):<44}{count:>7.0f}"
                    f"{_fmt_seconds(mean):>9}{_fmt_seconds(p50):>9}"
                    f"{_fmt_seconds(p90):>9}{_fmt_seconds(p99):>9}"
                )
                spark = _sparkline(buckets)
                if spark:
                    lines.append(f"    {spark}")

    counters = {
        name: family for name, family in families.items()
        if family["type"] == "counter"
    }
    if counters:
        lines.append("")
        lines.append("counters")
        lines.append("-" * 70)
        for name in sorted(counters):
            for labels, value in sorted(
                counters[name]["samples"],
                key=lambda s: sorted(s[0].items()),
            ):
                key = _labels_sans_le(labels)
                lines.append(
                    f"  {name} {_fmt_labels(key):<40}{value:>12g}"
                )

    gauges = {
        name: family for name, family in families.items()
        if family["type"] == "gauge"
    }
    if gauges:
        lines.append("")
        lines.append("gauges")
        lines.append("-" * 70)
        for name in sorted(gauges):
            for labels, value in sorted(
                gauges[name]["samples"],
                key=lambda s: sorted(s[0].items()),
            ):
                key = _labels_sans_le(labels)
                lines.append(
                    f"  {name} {_fmt_labels(key):<40}{value:>12g}"
                )

    return "\n".join(lines) + "\n"
