"""Labeled metric instruments: counters, gauges and log-bucketed
histograms, collected in a :class:`MetricsRegistry`.

The tracer (:mod:`repro.telemetry.tracer`) answers *what did this run
do*; the registry answers *what is the distribution over many
requests*.  Its workhorse is :class:`Histogram` — a log-bucketed,
mergeable latency histogram with quantile estimation — because serving
percentiles (p50/p99/p999) are exactly the numbers an SLO is written
against and a plain counter cannot produce them.

Design points:

* **log buckets** — bucket ``i`` covers ``(base·g^(i-1), base·g^i]``
  with growth ``g = 2^(1/4)`` (about 19 % relative resolution over
  the whole range), stored sparsely in a dict so an instrument that
  only ever sees millisecond latencies pays for millisecond buckets
  only;
* **mergeable** — two histograms with the same bucketing merge by
  adding bucket counts; rolling-window monitors
  (:mod:`repro.telemetry.slo`) exploit this by keeping one small
  histogram per time slice and merging on read;
* **labels** — ``registry.counter("server_requests_total",
  tenant="a", outcome="ok")`` returns a per-label-set child
  instrument, cached so the hot path is one dict lookup;
* **thread-safe** — every instrument guards its state with a lock;
  serving workers record concurrently;
* **Prometheus text exposition** — :meth:`MetricsRegistry.prometheus_text`
  renders the conventional format (histograms as cumulative ``_bucket``
  samples with ``le`` labels plus ``_sum``/``_count``), served by the
  ``/metrics`` endpoint (:mod:`repro.telemetry.httpd`).
"""

from __future__ import annotations

import math
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "quantile_from_buckets",
]

#: Smallest distinguishable value (1 microsecond when observing
#: seconds); everything at or below lands in bucket 0.
_BASE = 1e-6
#: Bucket growth factor: 4 buckets per octave, ~19 % resolution.
_GROWTH = 2.0 ** 0.25
_LOG_GROWTH = math.log(_GROWTH)

#: Default percentile set reported by :meth:`Histogram.percentiles`.
_QUANTILES = (("p50", 0.50), ("p90", 0.90), ("p99", 0.99),
              ("p999", 0.999))


class Histogram:
    """Log-bucketed, mergeable histogram with quantile estimation.

    Values are non-negative floats (canonically seconds).  Buckets are
    sparse: index ``i >= 1`` covers ``(base·g^(i-1), base·g^i]`` and
    index ``0`` covers ``[0, base]``.
    """

    __slots__ = ("_lock", "buckets", "count", "total", "min", "max")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    @staticmethod
    def bucket_index(value: float) -> int:
        """The sparse bucket index covering ``value``."""
        if value <= _BASE:
            return 0
        return max(1, math.ceil(math.log(value / _BASE) / _LOG_GROWTH))

    @staticmethod
    def bucket_upper(index: int) -> float:
        """Inclusive upper bound of bucket ``index``."""
        return _BASE * _GROWTH ** index if index > 0 else _BASE

    def observe(self, value: float) -> None:
        """Record one sample (negative values clamp to zero)."""
        v = float(value)
        if v < 0.0:
            v = 0.0
        idx = self.bucket_index(v)
        with self._lock:
            self.buckets[idx] = self.buckets.get(idx, 0) + 1
            self.count += 1
            self.total += v
            if v < self.min:
                self.min = v
            if v > self.max:
                self.max = v

    def merge(self, other: "Histogram") -> "Histogram":
        """Add ``other``'s samples into this histogram; returns self."""
        with other._lock:
            buckets = dict(other.buckets)
            count, total = other.count, other.total
            lo, hi = other.min, other.max
        with self._lock:
            for idx, c in buckets.items():
                self.buckets[idx] = self.buckets.get(idx, 0) + c
            self.count += count
            self.total += total
            if lo < self.min:
                self.min = lo
            if hi > self.max:
                self.max = hi
        return self

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (linear within the hit bucket).

        Returns ``0.0`` for an empty histogram.  Estimates are clamped
        to the observed ``[min, max]`` so outlier-free data never
        reports a quantile beyond what was seen.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self.count == 0:
                return 0.0
            target = q * self.count
            cum = 0.0
            for idx in sorted(self.buckets):
                c = self.buckets[idx]
                if cum + c >= target:
                    lo = 0.0 if idx == 0 else self.bucket_upper(idx - 1)
                    hi = self.bucket_upper(idx)
                    frac = (target - cum) / c
                    est = lo + frac * (hi - lo)
                    return min(max(est, self.min), self.max)
                cum += c
            return self.max

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentiles(self) -> dict[str, float]:
        """The standard quantile set as ``{"p50": ..., ...}``."""
        return {name: self.quantile(q) for name, q in _QUANTILES}

    def snapshot(self) -> dict:
        """A JSON-safe point-in-time summary."""
        with self._lock:
            count, total = self.count, self.total
            lo = self.min if self.count else 0.0
            hi = self.max
        out = {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "min": lo,
            "max": hi,
        }
        out.update(self.percentiles())
        return out

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs for exposition."""
        with self._lock:
            items = sorted(self.buckets.items())
        out: list[tuple[float, int]] = []
        cum = 0
        for idx, c in items:
            cum += c
            out.append((self.bucket_upper(idx), cum))
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Histogram(count={self.count}, mean={self.mean:.6f})"


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def inc(self, n: float = 1.0) -> float:
        with self._lock:
            self.value += n
            return self.value


class Gauge:
    """Last-write-wins measurement."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


class _Family:
    """All children of one metric name (one per label set)."""

    __slots__ = ("name", "kind", "children")

    def __init__(self, name: str, kind: str) -> None:
        self.name = name
        self.kind = kind
        self.children: dict[tuple[tuple[str, str], ...], object] = {}


class MetricsRegistry:
    """Named, labeled instruments with Prometheus exposition.

    The same ``(name, labels)`` pair always resolves to the same
    instrument object, so hot paths can either look up per call (one
    dict hit) or cache the returned handle.
    """

    def __init__(self, prefix: str = "repro_") -> None:
        self.prefix = prefix
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _instrument(self, kind: str, name: str,
                    labels: dict[str, str]):
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = self._families[name] = _Family(name, kind)
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{family.kind}, not {kind}"
                )
            child = family.children.get(key)
            if child is None:
                child = family.children[key] = _KINDS[kind]()
            return child

    def counter(self, name: str, **labels) -> Counter:
        return self._instrument("counter", name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._instrument("gauge", name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._instrument("histogram", name, labels)

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Nested JSON-safe snapshot: name -> [{labels, ...state}]."""
        with self._lock:
            families = {
                name: (f.kind, dict(f.children))
                for name, f in self._families.items()
            }
        out: dict[str, list[dict]] = {}
        for name in sorted(families):
            kind, children = families[name]
            rows = []
            for key in sorted(children):
                child = children[key]
                row: dict = {"labels": dict(key), "kind": kind}
                if kind == "histogram":
                    row.update(child.snapshot())
                else:
                    row["value"] = child.value
                rows.append(row)
            out[name] = rows
        return out

    def prometheus_text(self) -> str:
        """The registry in Prometheus text exposition format."""
        with self._lock:
            families = {
                name: (f.kind, dict(f.children))
                for name, f in self._families.items()
            }
        lines: list[str] = []
        for name in sorted(families):
            kind, children = families[name]
            metric = self.prefix + name
            lines.append(f"# TYPE {metric} {kind}")
            for key in sorted(children):
                child = children[key]
                label_str = ",".join(
                    f'{k}="{_escape(v)}"' for k, v in key
                )
                if kind == "histogram":
                    cum = child.cumulative_buckets()
                    for upper, count in cum:
                        le = ((label_str + ",") if label_str else "")
                        lines.append(
                            f'{metric}_bucket{{{le}le="{upper:.9g}"}}'
                            f" {count}"
                        )
                    le = ((label_str + ",") if label_str else "")
                    lines.append(
                        f'{metric}_bucket{{{le}le="+Inf"}} '
                        f"{child.count}"
                    )
                    braces = f"{{{label_str}}}" if label_str else ""
                    lines.append(
                        f"{metric}_sum{braces} {child.total:.9g}"
                    )
                    lines.append(
                        f"{metric}_count{braces} {child.count}"
                    )
                else:
                    braces = f"{{{label_str}}}" if label_str else ""
                    lines.append(
                        f"{metric}{braces} {child.value:.9g}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def quantile_from_buckets(
    buckets: list[tuple[float, float]], q: float
) -> float:
    """Estimate a quantile from cumulative ``(le, count)`` pairs.

    The standard Prometheus-side histogram_quantile interpolation,
    used by the ``repro top`` dashboard when it only has a scraped
    ``/metrics`` exposition to work from.  ``buckets`` must be sorted
    by ``le``; the ``+Inf`` bucket may be ``math.inf``.
    """
    if not buckets:
        return 0.0
    total = buckets[-1][1]
    if total <= 0:
        return 0.0
    target = q * total
    prev_le, prev_count = 0.0, 0.0
    for le, count in buckets:
        if count >= target:
            if math.isinf(le):
                return prev_le
            if count == prev_count:
                return le
            frac = (target - prev_count) / (count - prev_count)
            return prev_le + frac * (le - prev_le)
        prev_le, prev_count = le, count
    return prev_le
