"""A stdlib-only HTTP endpoint exposing ``/metrics`` and ``/health``.

:class:`MetricsHTTPServer` wraps :class:`http.server.ThreadingHTTPServer`
in a daemon thread so a :class:`~repro.service.server.PermutationServer`
(or any process owning a :class:`~repro.telemetry.metrics.MetricsRegistry`)
can be scraped by Prometheus — zero dependencies, ephemeral-port
friendly for tests (``port=0``), shut down cleanly via
:meth:`MetricsHTTPServer.close`.

Routes:

* ``GET /metrics`` — Prometheus text exposition (version 0.0.4
  content type), produced by the ``metrics_fn`` callable on every
  scrape, so gauges refresh at scrape time;
* ``GET /health`` (alias ``/healthz``) — JSON health snapshot from
  ``health_fn`` with status code 200 (``status: ok``) or 503
  (anything else), suitable for a readiness probe;
* anything else — 404.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

__all__ = ["MetricsHTTPServer"]

#: The Prometheus text exposition content type.
_METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsHTTPServer:
    """Serve ``/metrics`` and ``/health`` from a daemon thread.

    Parameters
    ----------
    metrics_fn:
        Zero-arg callable returning the Prometheus exposition text.
    health_fn:
        Optional zero-arg callable returning a JSON-safe dict with a
        ``status`` key (``"ok"`` maps to HTTP 200, else 503).
    host / port:
        Bind address; ``port=0`` picks an ephemeral port, exposed as
        :attr:`port` after :meth:`start`.
    """

    def __init__(self, metrics_fn, health_fn=None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.metrics_fn = metrics_fn
        self.health_fn = health_fn
        self.host = host
        self._requested_port = int(port)
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound port (only meaningful after :meth:`start`)."""
        if self._httpd is None:
            return self._requested_port
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsHTTPServer":
        if self._httpd is not None:
            return self
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt, *args):   # noqa: ARG002
                pass   # scrapes must not spam stderr

            def _send(self, code: int, content_type: str,
                      body: bytes) -> None:
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):   # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0]
                try:
                    if path == "/metrics":
                        body = outer.metrics_fn().encode("utf-8")
                        self._send(200, _METRICS_CONTENT_TYPE, body)
                    elif path in ("/health", "/healthz") \
                            and outer.health_fn is not None:
                        health = outer.health_fn()
                        code = (200 if health.get("status") == "ok"
                                else 503)
                        body = json.dumps(
                            health, indent=1, default=repr
                        ).encode("utf-8")
                        self._send(code, "application/json", body)
                    else:
                        self._send(404, "text/plain",
                                   b"not found\n")
                except Exception as exc:   # pragma: no cover
                    self._send(
                        500, "text/plain",
                        f"{type(exc).__name__}: {exc}\n".encode(),
                    )

        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), Handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsHTTPServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
