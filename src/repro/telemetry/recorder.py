"""The failure flight recorder: a bounded ring of recent structured
events that can dump a post-mortem bundle the moment something goes
wrong.

Latency histograms say *that* the p99 blew up; the flight recorder
says *what the last two thousand requests were doing when it did*.
:meth:`FlightRecorder.record` appends one small structured event
(admission, shed, retry, breaker transition, delivery, failure) to a
fixed-capacity ring buffer — O(1), lock-guarded, allocation-light —
so it can stay on permanently, even at load.

On a trigger (SLO breach, shed burst, unexpected error) the serving
core calls :meth:`FlightRecorder.dump`, which freezes the ring plus
every registered *snapshot provider* (breaker states, queue depth,
SLO status, active spans) into a JSON-safe **post-mortem bundle**, and
— when a dump directory is configured — writes it to
``postmortem-<seq>-<reason>.json``.  Dumps are rate-limited per
reason so a flapping trigger cannot fill the disk.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path

from repro.telemetry.sinks import _jsonable

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Bounded ring buffer of structured events + post-mortem dumps.

    Parameters
    ----------
    capacity:
        Events retained (oldest evicted first).
    dump_dir:
        Directory post-mortem bundles are written to (created on
        demand); ``None`` keeps bundles in memory only
        (:attr:`last_bundle`).
    min_dump_interval_s:
        Minimum seconds between two dumps for the *same* reason.
    clock:
        Monotonic seconds; injectable for deterministic tests.
    """

    def __init__(
        self,
        capacity: int = 2048,
        dump_dir: str | Path | None = None,
        min_dump_interval_s: float = 1.0,
        clock=time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.dump_dir = Path(dump_dir) if dump_dir is not None else None
        self.min_dump_interval_s = float(min_dump_interval_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._events: deque[dict] = deque(maxlen=self.capacity)
        self._providers: dict[str, object] = {}
        self._last_dump: dict[str, float] = {}
        self._seq = 0
        #: Total events ever recorded (ring may have evicted some).
        self.recorded = 0
        #: Bundles produced (rate-limited dumps do not count).
        self.dumps = 0
        #: The most recent bundle, for in-process inspection.
        self.last_bundle: dict | None = None
        #: Paths of bundles written to ``dump_dir``.
        self.dump_paths: list[Path] = []

    # ------------------------------------------------------------------

    def record(self, kind: str, **fields) -> None:
        """Append one structured event to the ring."""
        event = {"t": self._clock(), "kind": kind}
        for key, value in fields.items():
            event[key] = _jsonable(value)
        with self._lock:
            self._events.append(event)
            self.recorded += 1

    def add_provider(self, name: str, fn) -> None:
        """Register a zero-arg callable snapshotted into every dump."""
        with self._lock:
            self._providers[name] = fn

    def events(self) -> list[dict]:
        """The current ring contents, oldest first."""
        with self._lock:
            return list(self._events)

    # ------------------------------------------------------------------

    def dump(self, reason: str, force: bool = False,
             **context) -> dict | None:
        """Produce (and persist) a post-mortem bundle.

        Returns the bundle, or ``None`` when a dump for this reason
        happened less than ``min_dump_interval_s`` ago (unless
        ``force``).  Provider failures are captured in the bundle
        instead of propagating — a post-mortem must never take the
        server down with it.
        """
        now = self._clock()
        with self._lock:
            last = self._last_dump.get(reason)
            if (not force and last is not None
                    and now - last < self.min_dump_interval_s):
                return None
            self._last_dump[reason] = now
            events = list(self._events)
            providers = dict(self._providers)
            self._seq += 1
            seq = self._seq
        snapshots: dict[str, object] = {}
        for name, fn in providers.items():
            try:
                snapshots[name] = fn()
            except Exception as exc:  # pragma: no cover - defensive
                snapshots[name] = {
                    "error": f"{type(exc).__name__}: {exc}"
                }
        bundle = {
            "bundle": "repro-flight-recorder",
            "seq": seq,
            "reason": reason,
            "t": now,
            "context": {k: _jsonable(v) for k, v in context.items()},
            "events": events,
            "snapshots": snapshots,
        }
        path = None
        if self.dump_dir is not None:
            self.dump_dir.mkdir(parents=True, exist_ok=True)
            path = self.dump_dir / f"postmortem-{seq:04d}-{reason}.json"
            try:
                path.write_text(
                    json.dumps(bundle, indent=1, default=repr) + "\n",
                    encoding="utf-8",
                )
            except OSError:
                path = None   # a sick disk must not fail the caller
        with self._lock:
            self.dumps += 1
            self.last_bundle = bundle
            if path is not None:
                self.dump_paths.append(path)
        if path is not None:
            bundle["path"] = str(path)
        return bundle

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"FlightRecorder({len(self._events)}/{self.capacity} "
                f"events, {self.dumps} dump(s))")
