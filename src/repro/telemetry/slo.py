"""Rolling-window SLO monitoring with error-budget burn rate.

An :class:`SLO` states the serving objectives — availability and a
p99 latency bound over a rolling window.  The :class:`SLOMonitor`
ingests one ``(ok, latency)`` sample per finished request and answers,
at any moment:

* **availability** over the window (successes / total);
* **p99 latency** over the window (from merged per-slice
  :class:`~repro.telemetry.metrics.Histogram` objects — this is what
  "mergeable" buys: the window rolls by dropping a slice, never by
  rescanning samples);
* **error-budget burn rate** — the rate unavailability is consuming
  the budget, normalised so ``1.0`` means "exactly on target": a
  99.9 % objective burning at ``10×`` exhausts a 30-day budget in
  3 days.  Burn rate is *the* paging signal recommended by the SRE
  workbook, because raw availability hides how fast things are
  getting worse;
* **breached** — whether either objective is currently violated
  (after a minimum sample count, so one slow request cannot flap the
  monitor).

:meth:`SLOMonitor.record` returns ``True`` exactly on the transition
into breach — the serving core uses that edge to trigger a flight
recorder post-mortem dump (:mod:`repro.telemetry.recorder`) without
dumping again on every subsequent bad sample.
"""

from __future__ import annotations

import threading
import time

from repro.telemetry.metrics import Histogram

__all__ = ["SLO", "SLOMonitor"]

#: Number of sub-intervals the rolling window is divided into; the
#: window rolls with slice granularity.
_SLICES = 6


class SLO:
    """Serving objectives over a rolling window.

    Parameters
    ----------
    availability:
        Target success fraction, e.g. ``0.999``.
    latency_p99_s:
        Upper bound on the window's p99 latency, in seconds
        (``None`` disables the latency objective).
    window_s:
        Rolling-window length in seconds.
    min_samples:
        Breach is only declared once the window holds at least this
        many samples.
    """

    __slots__ = ("availability", "latency_p99_s", "window_s",
                 "min_samples")

    def __init__(
        self,
        availability: float = 0.99,
        latency_p99_s: float | None = 0.25,
        window_s: float = 60.0,
        min_samples: int = 20,
    ) -> None:
        if not 0.0 < availability <= 1.0:
            raise ValueError(
                f"availability target must be in (0, 1], got "
                f"{availability}"
            )
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        self.availability = float(availability)
        self.latency_p99_s = (
            float(latency_p99_s) if latency_p99_s is not None else None
        )
        self.window_s = float(window_s)
        self.min_samples = int(min_samples)

    def describe(self) -> dict:
        return {
            "availability": self.availability,
            "latency_p99_s": self.latency_p99_s,
            "window_s": self.window_s,
            "min_samples": self.min_samples,
        }


class _Slice:
    """One sub-interval of the rolling window."""

    __slots__ = ("start", "ok", "total", "latency")

    def __init__(self, start: float) -> None:
        self.start = start
        self.ok = 0
        self.total = 0
        self.latency = Histogram()


class SLOMonitor:
    """Ingest per-request outcomes, report objective compliance.

    Thread-safe; uses an injectable monotonic clock for deterministic
    tests.
    """

    def __init__(self, slo: SLO | None = None,
                 clock=time.monotonic) -> None:
        self.slo = slo or SLO()
        self._clock = clock
        self._lock = threading.Lock()
        self._slice_s = self.slo.window_s / _SLICES
        self._slices: list[_Slice] = [_Slice(clock())]
        self._breached = False
        #: Breach transitions observed (monotonic).
        self.breaches = 0

    # ------------------------------------------------------------------

    def _roll(self, now: float) -> None:
        """Advance to ``now``'s slice and drop expired ones (locked)."""
        current = self._slices[-1]
        while now - current.start >= self._slice_s:
            current = _Slice(current.start + self._slice_s)
            self._slices.append(current)
        horizon = now - self.slo.window_s
        while len(self._slices) > 1 and (
            self._slices[0].start + self._slice_s <= horizon
        ):
            self._slices.pop(0)

    def record(self, ok: bool, latency_s: float) -> bool:
        """Ingest one finished request.

        Returns ``True`` exactly when this sample *transitions* the
        monitor into breach (the edge the flight recorder dumps on).
        """
        now = self._clock()
        with self._lock:
            self._roll(now)
            sl = self._slices[-1]
            sl.total += 1
            if ok:
                sl.ok += 1
            sl.latency.observe(latency_s)
            status = self._status_locked(now)
            newly = status["breached"] and not self._breached
            self._breached = status["breached"]
            if newly:
                self.breaches += 1
            return newly

    def _status_locked(self, now: float) -> dict:
        ok = sum(s.ok for s in self._slices)
        total = sum(s.total for s in self._slices)
        merged = Histogram()
        for s in self._slices:
            merged.merge(s.latency)
        availability = ok / total if total else 1.0
        p99 = merged.quantile(0.99)
        target = self.slo.availability
        budget = 1.0 - target
        error_rate = 1.0 - availability
        burn = error_rate / budget if budget > 0 else (
            0.0 if error_rate == 0 else float("inf")
        )
        enough = total >= self.slo.min_samples
        breach_avail = enough and availability < target
        breach_latency = (
            enough
            and self.slo.latency_p99_s is not None
            and p99 > self.slo.latency_p99_s
        )
        return {
            "availability": availability,
            "p99_s": p99,
            "samples": total,
            "burn_rate": burn,
            "budget_remaining": (
                1.0 - burn if budget > 0 else 1.0
            ),
            "breached": bool(breach_avail or breach_latency),
            "breach_availability": bool(breach_avail),
            "breach_latency": bool(breach_latency),
        }

    def status(self) -> dict:
        """Point-in-time compliance snapshot (rolls the window)."""
        now = self._clock()
        with self._lock:
            self._roll(now)
            out = self._status_locked(now)
        out["objective"] = self.slo.describe()
        out["breaches"] = self.breaches
        return out

    @property
    def breached(self) -> bool:
        with self._lock:
            return self._breached
