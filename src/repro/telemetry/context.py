"""Per-request context propagation.

A :class:`RequestContext` is the identity a serving request carries
through every layer it touches — admission, queue wait, each
retry/degradation attempt, planner cache tiers, executors.  It is
created once at ``PermutationServer.submit`` (only when a tracer is
active: the inactive fast path never allocates one), travels with the
queued request object, and is *activated* on whichever thread is
currently doing the request's work.

Activation is thread-local: :func:`set_context` / :func:`use_context`
bind a context to the calling thread, and
:func:`repro.telemetry.request_scope` combines that binding with
adopting the request's root span onto the thread's span stack — the
hand-off that makes one serve render as a single connected span tree
even though submit, queue wait and execution happen on different
threads.

While a context is bound, every span opened through the module-level
:func:`repro.telemetry.span` helper is automatically tagged with the
``request_id`` attribute, so JSONL event logs and the flight recorder
can be joined back to the request without threading the id through
every call signature.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any

__all__ = [
    "RequestContext",
    "current_context",
    "set_context",
    "use_context",
]


class RequestContext:
    """Identity and budget of one in-flight serving request.

    Attributes
    ----------
    request_id:
        Process-unique integer id assigned at admission.
    tenant / name:
        The tenant namespace and registration the request targets.
    priority:
        Queue priority (``HIGH``/``NORMAL``/``LOW`` integer).
    deadline:
        Absolute monotonic deadline in seconds, or ``None``.
    span:
        The request's root :class:`~repro.telemetry.tracer.Span`
        (detached; lives from admission to delivery), or ``None``.
    """

    __slots__ = ("request_id", "tenant", "name", "priority",
                 "deadline", "span")

    #: Total contexts ever allocated in this process — the
    #: inactive-fast-path regression tests assert this stays flat when
    #: no tracer is active.
    created = 0

    def __init__(
        self,
        request_id: int,
        tenant: str = "default",
        name: str = "",
        priority: int = 1,
        deadline: float | None = None,
        span: Any = None,
    ) -> None:
        self.request_id = request_id
        self.tenant = tenant
        self.name = name
        self.priority = priority
        self.deadline = deadline
        self.span = span
        RequestContext.created += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"RequestContext(id={self.request_id}, "
                f"tenant={self.tenant!r}, name={self.name!r})")


_LOCAL = threading.local()


def current_context() -> RequestContext | None:
    """The context bound to the calling thread, or ``None``."""
    return getattr(_LOCAL, "context", None)


def set_context(ctx: RequestContext | None) -> RequestContext | None:
    """Bind ``ctx`` to the calling thread; returns the previous one."""
    previous = getattr(_LOCAL, "context", None)
    _LOCAL.context = ctx
    return previous


@contextmanager
def use_context(ctx: RequestContext | None):
    """Bind ``ctx`` to the calling thread for the ``with`` block."""
    previous = set_context(ctx)
    try:
        yield ctx
    finally:
        set_context(previous)
