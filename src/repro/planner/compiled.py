"""The :class:`Planner` (compile-once front door) and the
:class:`CompiledPermutation` handle it returns.

``Planner.compile(p)`` resolves a permutation to a compiled handle by
walking the cache tiers cheapest-first — in-memory LRU, then the disk
cache, then a cold ``Engine.plan`` — and the handle's ``apply`` /
``apply_batch`` / ``simulate`` never re-plan: they run the stored
*optimized* program straight through the executor layer.  On the
workload the paper targets (one permutation, many payloads) this
turns every call after the first into pure apply time.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro import telemetry
from repro.errors import SemanticValidationError
from repro.ir.program import KernelProgram
from repro.ir.registry import get_engine
from repro.passes import PassPipeline, default_pipeline
from repro.planner.cache import DiskPlanCache, LRUPlanCache
from repro.planner.fingerprint import (
    permutation_digest,
    plan_fingerprint,
    shard_fingerprint,
)
from repro.staticcheck.semantics import (
    SemanticCertificate,
    validate_translation,
)

if TYPE_CHECKING:
    from repro.exec.streaming import StreamingStats
    from repro.shard import ShardedProgram


class CompiledPermutation:
    """A planned, optimized, fingerprinted permutation.

    Wraps the planned engine together with its pipeline-optimized
    program; every method here executes that stored program (or
    delegates to the already-planned engine) — none of them ever
    re-plans.
    """

    def __init__(
        self,
        engine: Any,
        program: KernelProgram,
        fingerprint: str,
        pipeline_signature: str,
        semantic_certificate: SemanticCertificate | None = None,
    ) -> None:
        self.engine = engine
        self.program = program
        self.fingerprint = fingerprint
        self.pipeline_signature = pipeline_signature
        #: The translation-validation proof issued when the planner
        #: optimized this handle's program (``None`` for handles built
        #: outside the planner).
        self.semantic_certificate = semantic_certificate
        # Proven shardings, memoized per stripe count.
        self._shards: dict[int, ShardedProgram] = {}
        self._shard_lock = threading.Lock()

    @property
    def p(self) -> np.ndarray:
        return np.asarray(self.engine.p)

    @property
    def n(self) -> int:
        return int(self.program.n)

    @property
    def width(self) -> int:
        return int(self.program.width)

    @property
    def engine_name(self) -> str:
        return str(getattr(type(self.engine), "engine_name", ""))

    def apply(
        self, a: np.ndarray, recorder: Any | None = None
    ) -> np.ndarray:
        """Permute one array with the stored optimized program.

        With a ``recorder`` the call delegates to the planned engine's
        traced kernels (recorders observe real access rounds, which
        the optimized reference path does not emit).
        """
        if recorder is not None:
            return np.asarray(self.engine.apply(a, recorder))
        from repro.exec.reference import ReferenceExecutor

        return np.asarray(ReferenceExecutor().run(self.program, a))

    def apply_batch(self, batch: np.ndarray) -> np.ndarray:
        """Permute ``k`` stacked payloads, one pass per kernel op."""
        from repro.exec.batch import BatchExecutor

        return np.asarray(BatchExecutor().run(self.program, batch))

    def lower(self) -> KernelProgram:
        """The *optimized* program (the handle's execution substrate)."""
        return self.program

    def simulate(
        self, machine: Any = None, dtype: Any = np.float32
    ) -> Any:
        """Price the optimized program on the HMM cost model."""
        from repro.exec.simulator import SimulatorExecutor

        return SimulatorExecutor().simulate(
            self.program, machine, dtype=dtype
        )

    def shard(self, d: int) -> "ShardedProgram":
        """The proven ``d``-stripe sharding of this handle's program.

        Factors the stored optimized program into ``d`` row stripes
        plus a column exchange, proves the factorisation against the
        whole program's denotation, and memoizes the result per ``d``
        (sharding denotes the full program — worth amortizing exactly
        like planning is).
        """
        with self._shard_lock:
            sharded = self._shards.get(d)
        if sharded is not None:
            return sharded
        from repro.shard import shard_program

        with telemetry.span(
            "planner.shard", d=d, fingerprint=self.fingerprint[:12]
        ):
            sharded = shard_program(self.program, d)
        with self._shard_lock:
            return self._shards.setdefault(d, sharded)

    def shard_fingerprint(self, d: int) -> str:
        """Content-addressed identity of the ``d``-stripe shard plan."""
        return shard_fingerprint(self.fingerprint, d)

    def apply_stream(
        self,
        path_in: str | Path,
        path_out: str | Path,
        d: int = 8,
        max_resident_bytes: int | None = None,
        tmp_dir: str | Path | None = None,
    ) -> "StreamingStats":
        """Permute an on-disk payload out-of-core.

        Reads the ``.npy`` payload at ``path_in``, streams it through
        the proven ``d``-stripe sharding under the resident-bytes
        budget, and writes the permuted payload to ``path_out``.
        """
        from repro.exec.streaming import (
            DEFAULT_RESIDENT_BYTES,
            StreamingExecutor,
        )

        executor = StreamingExecutor(
            max_resident_bytes=max_resident_bytes
            or DEFAULT_RESIDENT_BYTES
        )
        return executor.run_sharded(
            self.shard(d), path_in, path_out, tmp_dir=tmp_dir
        )

    def describe(self) -> str:
        lines = [
            f"compiled {self.engine_name!r}: fingerprint "
            f"{self.fingerprint[:12]}...",
            f"  pipeline {self.pipeline_signature}",
        ]
        if self.semantic_certificate is not None:
            lines.append("  " + self.semantic_certificate.summary())
        lines.append(self.program.describe())
        return "\n".join(lines)


class Planner:
    """Compile-once / apply-many front door over the engine registry.

    Parameters
    ----------
    cache_size:
        Capacity of the in-memory LRU tier.
    cache_dir:
        Optional directory for the persistent disk tier (created on
        demand); ``None`` disables it.
    pipeline:
        Pass pipeline to optimize compiled programs with (defaults to
        the process-wide :func:`~repro.passes.default_pipeline`).  The
        pipeline's signature is part of every fingerprint.
    backend:
        Default colouring backend forwarded to ``Engine.plan``.
    """

    def __init__(
        self,
        cache_size: int = 64,
        cache_dir: str | Path | None = None,
        pipeline: PassPipeline | None = None,
        backend: str = "auto",
    ) -> None:
        self.pipeline = pipeline or default_pipeline()
        self.memory = LRUPlanCache(cache_size)
        self.disk = (
            DiskPlanCache(cache_dir) if cache_dir is not None else None
        )
        self.backend = backend
        self.plans = 0
        self.shard_plans = 0
        self.semantic_rejections = 0
        #: Optional :class:`~repro.telemetry.MetricsRegistry`; when set
        #: every compile records ``planner_compile_seconds`` labeled by
        #: the cache tier that answered (``memory``/``disk``/``cold``)
        #: and the engine, so the latency cliff between tiers is
        #: measurable per request, not just countable.
        self.metrics = None
        self._lock = threading.Lock()
        # One lock per in-flight fingerprint: concurrent compiles of
        # the same permutation collapse to a single cold plan, the
        # rest wait and take the memory hit.
        self._inflight: dict[str, threading.Lock] = {}

    def fingerprint(
        self,
        p: np.ndarray,
        engine: str = "scheduled",
        width: int = 32,
        digest: str | None = None,
    ) -> str:
        """The content-addressed cache key ``compile`` would use."""
        if digest is None:
            digest = permutation_digest(p)
        return plan_fingerprint(
            digest, engine, width, self.pipeline.signature()
        )

    def compile(
        self,
        p: np.ndarray,
        engine: str = "scheduled",
        width: int = 32,
        digest: str | None = None,
        backend: str | None = None,
    ) -> CompiledPermutation:
        """Resolve ``p`` to a :class:`CompiledPermutation`.

        Tier order: memory LRU, disk cache, cold ``Engine.plan``.  A
        caller that already holds the permutation's digest (e.g. the
        resilience chain hopping engines) passes it via ``digest`` so
        the array is never re-hashed.
        """
        fp = self.fingerprint(p, engine=engine, width=width,
                              digest=digest)
        t0 = time.perf_counter()
        with telemetry.span(
            "planner.compile", engine=engine, fingerprint=fp[:12]
        ) as sp:
            compiled, tier = self._resolve(fp, p, engine, width,
                                           backend)
            sp.set(tier=tier)
        if self.metrics is not None:
            self.metrics.histogram(
                "planner_compile_seconds", tier=tier, engine=engine
            ).observe(time.perf_counter() - t0)
        return compiled

    def _resolve(
        self,
        fp: str,
        p: np.ndarray,
        engine: str,
        width: int,
        backend: str | None,
    ) -> tuple[CompiledPermutation, str]:
        """Walk the tiers for ``fp``; returns (handle, answering tier)."""
        compiled = self.memory.get(fp)
        if compiled is not None:
            return compiled, "memory"
        with self._flight(fp):
            # Another thread may have finished this exact compile
            # while we waited; its result is now a memory hit.
            compiled = self.memory.get_if_present(fp)
            if compiled is not None:
                return compiled, "memory"
            plan = (
                self.disk.load(fp) if self.disk is not None else None
            )
            if plan is not None:
                tier = "disk"
            else:
                with telemetry.span("planner.plan", engine=engine):
                    plan = get_engine(engine).plan(
                        p, width=width,
                        backend=backend or self.backend,
                    )
                with self._lock:
                    self.plans += 1
                telemetry.count("planner.planned")
                tier = "cold"
                if self.disk is not None:
                    self.disk.store(fp, plan,
                                    self.pipeline.signature())
            program, cert, proven = self._optimize_validated(plan)
            compiled = CompiledPermutation(
                engine=plan,
                program=program,
                fingerprint=fp,
                pipeline_signature=self.pipeline.signature(),
                semantic_certificate=cert,
            )
            if proven:
                self.memory.put(fp, compiled)
            return compiled, tier

    def compile_sharded(
        self,
        p: np.ndarray,
        d: int,
        engine: str = "scheduled",
        width: int = 32,
        digest: str | None = None,
        backend: str | None = None,
    ) -> "tuple[CompiledPermutation, ShardedProgram]":
        """Compile ``p`` and return its proven ``d``-stripe sharding.

        The handle comes from the usual cache tiers; the sharding is
        memoized on the handle, so repeated calls with the same ``d``
        pay nothing after the first.
        """
        compiled = self.compile(
            p, engine=engine, width=width, digest=digest,
            backend=backend,
        )
        fresh = d not in compiled._shards
        sharded = compiled.shard(d)
        if fresh:
            with self._lock:
                self.shard_plans += 1
            telemetry.count("planner.sharded")
        return compiled, sharded

    def _optimize_validated(
        self, plan: Any
    ) -> tuple[KernelProgram, SemanticCertificate, bool]:
        """Optimize a plan's program under translation validation.

        Runs the pipeline in ``validate=True`` mode and certifies the
        result against the requested permutation.  On refutation the
        compile is *not* failed: the raw (unoptimized) program — which
        must itself denote the requested permutation, or
        :class:`~repro.errors.SemanticValidationError` is raised — is
        served instead, the ``planner.semantic.rejected`` telemetry
        counter is bumped, and the returned ``proven`` flag is False so
        callers refuse to cache the handle.
        """
        raw = plan.lower()
        requested = np.asarray(plan.p)
        signature = self.pipeline.signature()
        try:
            optimized = self.pipeline.run(raw, validate=True)
            cert = validate_translation(
                raw, optimized, requested=requested,
                pipeline_signature=signature,
            )
            if cert.ok:
                return optimized, cert, True
        except SemanticValidationError as exc:
            cert = exc.certificate
        telemetry.count("planner.semantic.rejected")
        with self._lock:
            self.semantic_rejections += 1
        blame = getattr(cert, "blame", None) or "<pipeline>"
        telemetry.count("planner.semantic.rejected." + blame)
        # Fall back to the raw program — still proved against the
        # requested permutation, because an unproven optimization must
        # degrade to slower, never to wrong.
        fallback = validate_translation(raw, raw, requested=requested)
        if not fallback.ok:
            raise SemanticValidationError(
                f"lowered program of engine "
                f"{getattr(type(plan), 'engine_name', '?')!r} does not "
                f"denote the requested permutation: "
                f"{fallback.summary()}",
                certificate=fallback,
            )
        return raw, fallback, False

    def _flight(self, fingerprint: str) -> threading.Lock:
        """The single-flight lock serialising cold compiles of one
        fingerprint (created on demand, kept for the planner's life —
        the population is bounded by distinct registrations)."""
        with self._lock:
            return self._inflight.setdefault(
                fingerprint, threading.Lock()
            )

    def warm_from_disk(self, fingerprint: str) -> bool:
        """Promote one disk entry into the memory tier; True on hit."""
        if self.disk is None:
            return False
        plan = self.disk.load(fingerprint)
        if plan is None:
            return False
        program, cert, proven = self._optimize_validated(plan)
        if not proven:
            # An unproven optimization must not be pinned in memory.
            return False
        self.memory.put(
            fingerprint,
            CompiledPermutation(
                engine=plan,
                program=program,
                fingerprint=fingerprint,
                pipeline_signature=self.pipeline.signature(),
                semantic_certificate=cert,
            ),
        )
        return True

    def stats(self) -> dict:
        """Merged hit/miss/eviction counters across both tiers."""
        merged = {
            "cold_plans": self.plans,
            "shard_plans": self.shard_plans,
            "semantic_rejections": self.semantic_rejections,
        }
        merged.update(self.memory.stats())
        if self.disk is not None:
            merged.update(self.disk.stats())
        return merged

    def describe(self) -> str:
        lines = [f"planner: pipeline {self.pipeline.signature()}"]
        for key, value in sorted(self.stats().items()):
            lines.append(f"  {key:<18} {value}")
        return "\n".join(lines)
