"""The :class:`Planner` (compile-once front door) and the
:class:`CompiledPermutation` handle it returns.

``Planner.compile(p)`` resolves a permutation to a compiled handle by
walking the cache tiers cheapest-first — in-memory LRU, then the
**sealed** sidecar on disk, then the full v3 disk entry, then a cold
``Engine.plan`` — and the handle's ``apply`` / ``apply_batch`` /
``simulate`` never re-plan.  On the workload the paper targets (one
permutation, many payloads) this turns every call after the first into
pure apply time, and with the sealed tier that apply is a *single*
proven flat gather: a handle resolved from a sealed sidecar serves
``apply`` without ever rehydrating the v3 plan file (the full program
is loaded lazily, only if something asks for ``lower()`` /
``simulate()`` / ``shard()`` / a recorder).
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro import telemetry
from repro.errors import SemanticValidationError
from repro.ir.program import KernelProgram
from repro.ir.registry import get_engine
from repro.ir.sealed import SealedProgram
from repro.passes import PassPipeline, default_pipeline, seal_program
from repro.planner.cache import DiskPlanCache, LRUPlanCache
from repro.planner.fingerprint import (
    permutation_digest,
    plan_fingerprint,
    shard_fingerprint,
)
from repro.staticcheck.semantics import (
    SemanticCertificate,
    validate_translation,
)

if TYPE_CHECKING:
    from repro.exec.streaming import StreamingStats
    from repro.shard import ShardedProgram

#: What a lazy handle's loader returns: the planned engine, its
#: optimized program, and the translation-validation certificate.
_Loaded = tuple[Any, KernelProgram, "SemanticCertificate | None"]


class CompiledPermutation:
    """A planned, optimized, fingerprinted permutation.

    Wraps the planned engine together with its pipeline-optimized
    program and — when the planner sealed it — the proven flat index
    maps of :class:`~repro.ir.sealed.SealedProgram`; every method here
    executes the stored artifacts (or delegates to the already-planned
    engine) — none of them ever re-plans.

    Handles resolved from a sealed disk sidecar are **lazy**: the
    engine and full program stay unloaded (``loader`` rehydrates them
    on first demand), while ``apply`` / ``apply_batch`` / ``p`` /
    ``n`` are served from the sealed maps alone.
    """

    def __init__(
        self,
        engine: Any,
        program: KernelProgram | None,
        fingerprint: str,
        pipeline_signature: str,
        semantic_certificate: SemanticCertificate | None = None,
        sealed: SealedProgram | None = None,
        loader: "Callable[[], _Loaded] | None" = None,
    ) -> None:
        if program is None and loader is None:
            raise ValueError(
                "CompiledPermutation needs a program or a loader"
            )
        self._engine = engine
        self._program = program
        self._loader = loader
        self.fingerprint = fingerprint
        self.pipeline_signature = pipeline_signature
        #: The translation-validation proof issued when the planner
        #: optimized this handle's program (``None`` for handles built
        #: outside the planner).
        self.semantic_certificate = semantic_certificate
        #: The sealed (single proven gather) form, when the planner
        #: sealed this handle; ``apply``/``apply_batch`` route through
        #: it.
        self.sealed = sealed
        self._load_lock = threading.Lock()
        # Proven shardings, memoized per stripe count.
        self._shards: dict[int, ShardedProgram] = {}
        self._shard_lock = threading.Lock()

    # -- lazy rehydration ----------------------------------------------

    def _ensure_loaded(self) -> None:
        if self._program is not None:
            return
        with self._load_lock:
            if self._program is not None:
                return
            assert self._loader is not None
            telemetry.count("planner.sealed.rehydrated")
            engine, program, cert = self._loader()
            self._engine = engine
            if self.semantic_certificate is None:
                self.semantic_certificate = cert
            # Assigned last: _ensure_loaded's unlocked fast path keys
            # off _program, so it must only become visible once the
            # engine is in place.
            self._program = program

    @property
    def engine(self) -> Any:
        """The planned engine (rehydrated on first demand)."""
        self._ensure_loaded()
        return self._engine

    @property
    def program(self) -> KernelProgram:
        """The optimized program (rehydrated on first demand)."""
        self._ensure_loaded()
        assert self._program is not None
        return self._program

    @property
    def is_loaded(self) -> bool:
        """Whether the engine/program are resident (False only for
        sealed handles that have served every request so far from the
        sealed maps)."""
        return self._program is not None

    # -- cheap accessors (never force rehydration) ---------------------

    @property
    def p(self) -> np.ndarray:
        if self.sealed is not None:
            return self.sealed.scatter
        return np.asarray(self.engine.p)

    @property
    def n(self) -> int:
        if self.sealed is not None:
            return self.sealed.n
        return int(self.program.n)

    @property
    def width(self) -> int:
        if self.sealed is not None:
            return self.sealed.width
        return int(self.program.width)

    @property
    def engine_name(self) -> str:
        if self._engine is None and self.sealed is not None:
            return self.sealed.engine
        return str(getattr(type(self.engine), "engine_name", ""))

    def predicted_rounds(self) -> int | None:
        """The annotate-cost pass's round prediction, from the sealed
        meta when available (so observing an apply never forces a
        lazy handle to rehydrate its program)."""
        if self.sealed is not None:
            rounds = self.sealed.meta.get("predicted_rounds")
        else:
            rounds = (self.program.meta or {}).get("predicted_rounds")
        if isinstance(rounds, int) and rounds > 0:
            return rounds
        return None

    def resident_bytes(self) -> int:
        """Bytes this handle pins in memory (cache accounting): the
        sealed index maps plus the program's schedule arrays, counting
        only what is actually resident."""
        total = 0
        if self.sealed is not None:
            total += self.sealed.nbytes
        program = self._program
        if program is not None:
            for op in program.ops:
                for field in op._ARRAY_FIELDS:
                    value = getattr(op, field)
                    if value is not None:
                        total += int(np.asarray(value).nbytes)
        return total

    # -- execution ------------------------------------------------------

    def apply(
        self, a: np.ndarray, recorder: Any | None = None
    ) -> np.ndarray:
        """Permute one array.

        Sealed handles serve this as a single proven flat gather.
        With a ``recorder`` the call delegates to the planned engine's
        traced kernels (recorders observe real access rounds, which
        neither the sealed nor the optimized reference path emits).
        """
        if recorder is not None:
            return np.asarray(self.engine.apply(a, recorder))
        if self.sealed is not None:
            from repro.exec.sealed import SealedExecutor

            return np.asarray(SealedExecutor().run(self.sealed, a))
        from repro.exec.reference import ReferenceExecutor

        return np.asarray(ReferenceExecutor().run(self.program, a))

    def apply_batch(self, batch: np.ndarray) -> np.ndarray:
        """Permute ``k`` stacked payloads (one 2-D gather when sealed,
        one pass per kernel op otherwise)."""
        if self.sealed is not None:
            from repro.exec.sealed import SealedExecutor

            return np.asarray(
                SealedExecutor().run_batch(self.sealed, batch)
            )
        from repro.exec.batch import BatchExecutor

        return np.asarray(BatchExecutor().run(self.program, batch))

    def lower(self) -> KernelProgram:
        """The *optimized* program (the handle's execution substrate)."""
        return self.program

    def simulate(
        self, machine: Any = None, dtype: Any = np.float32
    ) -> Any:
        """Price the optimized program on the HMM cost model."""
        from repro.exec.simulator import SimulatorExecutor

        return SimulatorExecutor().simulate(
            self.program, machine, dtype=dtype
        )

    def shard(self, d: int) -> "ShardedProgram":
        """The proven ``d``-stripe sharding of this handle's program.

        Factors the stored optimized program into ``d`` row stripes
        plus a column exchange, proves the factorisation against the
        whole program's denotation, and memoizes the result per ``d``
        (sharding denotes the full program — worth amortizing exactly
        like planning is).
        """
        with self._shard_lock:
            sharded = self._shards.get(d)
        if sharded is not None:
            return sharded
        from repro.shard import shard_program

        with telemetry.span(
            "planner.shard", d=d, fingerprint=self.fingerprint[:12]
        ):
            sharded = shard_program(self.program, d)
        with self._shard_lock:
            return self._shards.setdefault(d, sharded)

    def shard_fingerprint(self, d: int) -> str:
        """Content-addressed identity of the ``d``-stripe shard plan."""
        return shard_fingerprint(self.fingerprint, d)

    def apply_stream(
        self,
        path_in: str | Path,
        path_out: str | Path,
        d: int = 8,
        max_resident_bytes: int | None = None,
        tmp_dir: str | Path | None = None,
    ) -> "StreamingStats":
        """Permute an on-disk payload out-of-core.

        Reads the ``.npy`` payload at ``path_in``, streams it through
        the proven ``d``-stripe sharding under the resident-bytes
        budget, and writes the permuted payload to ``path_out``.
        """
        from repro.exec.streaming import (
            DEFAULT_RESIDENT_BYTES,
            StreamingExecutor,
        )

        executor = StreamingExecutor(
            max_resident_bytes=max_resident_bytes
            or DEFAULT_RESIDENT_BYTES
        )
        return executor.run_sharded(
            self.shard(d), path_in, path_out, tmp_dir=tmp_dir
        )

    def describe(self) -> str:
        lines = [
            f"compiled {self.engine_name!r}: fingerprint "
            f"{self.fingerprint[:12]}...",
            f"  pipeline {self.pipeline_signature}",
        ]
        if self.semantic_certificate is not None:
            lines.append("  " + self.semantic_certificate.summary())
        if self.sealed is not None:
            lines.append("  " + self.sealed.describe())
        if self._program is not None:
            lines.append(self._program.describe())
        else:
            lines.append(
                "  program: not resident (sealed handle; rehydrates "
                "on demand)"
            )
        return "\n".join(lines)


class Planner:
    """Compile-once / apply-many front door over the engine registry.

    Parameters
    ----------
    cache_size:
        Capacity (entry count) of the in-memory LRU tier.
    cache_dir:
        Optional directory for the persistent disk tier (created on
        demand); ``None`` disables it.
    pipeline:
        Pass pipeline to optimize compiled programs with (defaults to
        the process-wide :func:`~repro.passes.default_pipeline`).  The
        pipeline's signature is part of every fingerprint.
    backend:
        Default colouring backend forwarded to ``Engine.plan``.
    cache_max_bytes:
        Optional bound on the memory tier's resident bytes (programs
        plus sealed index maps); LRU-evicted past it.
    disk_max_bytes:
        Optional bound on the disk tier's total file bytes (plans plus
        sealed sidecars); LRU-evicted past it.
    """

    def __init__(
        self,
        cache_size: int = 64,
        cache_dir: str | Path | None = None,
        pipeline: PassPipeline | None = None,
        backend: str = "auto",
        cache_max_bytes: int | None = None,
        disk_max_bytes: int | None = None,
    ) -> None:
        self.pipeline = pipeline or default_pipeline()
        self.memory = LRUPlanCache(
            cache_size, max_bytes=cache_max_bytes
        )
        self.disk = (
            DiskPlanCache(cache_dir, max_bytes=disk_max_bytes)
            if cache_dir is not None
            else None
        )
        self.backend = backend
        self.plans = 0
        self.shard_plans = 0
        self.sealed_plans = 0
        self.semantic_rejections = 0
        #: Optional :class:`~repro.telemetry.MetricsRegistry`; when set
        #: every compile records ``planner_compile_seconds`` labeled by
        #: the cache tier that answered (``memory``/``sealed``/
        #: ``disk``/``cold``) and the engine, so the latency cliff
        #: between tiers is measurable per request, not just countable.
        self.metrics = None
        self._lock = threading.Lock()
        # One lock per in-flight fingerprint: concurrent compiles of
        # the same permutation collapse to a single cold plan, the
        # rest wait and take the memory hit.
        self._inflight: dict[str, threading.Lock] = {}

    def fingerprint(
        self,
        p: np.ndarray,
        engine: str = "scheduled",
        width: int = 32,
        digest: str | None = None,
    ) -> str:
        """The content-addressed cache key ``compile`` would use."""
        if digest is None:
            digest = permutation_digest(p)
        return plan_fingerprint(
            digest, engine, width, self.pipeline.signature()
        )

    def compile(
        self,
        p: np.ndarray,
        engine: str = "scheduled",
        width: int = 32,
        digest: str | None = None,
        backend: str | None = None,
    ) -> CompiledPermutation:
        """Resolve ``p`` to a :class:`CompiledPermutation`.

        Tier order: memory LRU, sealed disk sidecar, full v3 disk
        entry, cold ``Engine.plan``.  A caller that already holds the
        permutation's digest (e.g. the resilience chain hopping
        engines) passes it via ``digest`` so the array is never
        re-hashed.
        """
        fp = self.fingerprint(p, engine=engine, width=width,
                              digest=digest)
        t0 = time.perf_counter()
        with telemetry.span(
            "planner.compile", engine=engine, fingerprint=fp[:12]
        ) as sp:
            compiled, tier = self._resolve(fp, p, engine, width,
                                           backend)
            sp.set(tier=tier)
        if self.metrics is not None:
            self.metrics.histogram(
                "planner_compile_seconds", tier=tier, engine=engine
            ).observe(time.perf_counter() - t0)
        return compiled

    def _resolve(
        self,
        fp: str,
        p: np.ndarray,
        engine: str,
        width: int,
        backend: str | None,
    ) -> tuple[CompiledPermutation, str]:
        """Walk the tiers for ``fp``; returns (handle, answering tier)."""
        compiled = self.memory.get(fp)
        if compiled is not None:
            return compiled, "memory"
        with self._flight(fp):
            # Another thread may have finished this exact compile
            # while we waited; its result is now a memory hit.
            compiled = self.memory.get_if_present(fp)
            if compiled is not None:
                return compiled, "memory"
            if self.disk is not None:
                sealed = self.disk.load_sealed(fp)
                if sealed is not None:
                    compiled = self._from_sealed(fp, sealed, backend)
                    self.memory.put(fp, compiled)
                    return compiled, "sealed"
            plan = (
                self.disk.load(fp) if self.disk is not None else None
            )
            if plan is not None:
                tier = "disk"
            else:
                with telemetry.span("planner.plan", engine=engine):
                    plan = get_engine(engine).plan(
                        p, width=width,
                        backend=backend or self.backend,
                    )
                with self._lock:
                    self.plans += 1
                telemetry.count("planner.planned")
                tier = "cold"
                if self.disk is not None:
                    self.disk.store(fp, plan,
                                    self.pipeline.signature())
            program, cert, proven = self._optimize_validated(plan)
            sealed = self._seal(plan, program, cert) if proven else None
            compiled = CompiledPermutation(
                engine=plan,
                program=program,
                fingerprint=fp,
                pipeline_signature=self.pipeline.signature(),
                semantic_certificate=cert,
                sealed=sealed,
            )
            if proven:
                self.memory.put(fp, compiled)
                if self.disk is not None and sealed is not None:
                    self._store_sealed(fp, sealed)
            return compiled, tier

    def _seal(
        self,
        plan: Any,
        program: KernelProgram,
        cert: SemanticCertificate | None,
    ) -> SealedProgram | None:
        """Collapse a proven optimized program to its sealed form.

        Reuses the just-issued translation-validation certificate, so
        sealing costs one inversion pass, not a re-denotation.  A seal
        that fails (it should not, the map is proven) degrades to an
        unsealed handle, never to an error on the compile path.
        """
        try:
            sealed = seal_program(
                program,
                requested=np.asarray(plan.p),
                certificate=cert,
                pipeline_signature=self.pipeline.signature(),
            )
        except SemanticValidationError:  # pragma: no cover - belt
            telemetry.count("planner.sealed.refused")
            return None
        sealed.certificate = cert
        with self._lock:
            self.sealed_plans += 1
        telemetry.count("planner.sealed.planned")
        return sealed

    def _store_sealed(
        self, fp: str, sealed: SealedProgram
    ) -> None:
        """Persist the sealed sidecar, bound to its plan file's
        payload checksum (read back cheaply from the just-stored v3
        entry)."""
        assert self.disk is not None
        from repro.core.io import read_plan_checksum
        from repro.errors import PlanIntegrityError

        sealed.meta["fingerprint"] = fp
        plan_path = self.disk.path_for(fp)
        if plan_path.exists():
            try:
                sealed.meta["plan_sha"] = read_plan_checksum(plan_path)
            except PlanIntegrityError:
                sealed.meta.pop("plan_sha", None)
        try:
            self.disk.store_sealed(fp, sealed)
        except OSError:
            # A failed sidecar persist must not fail the compile; the
            # sealed form still serves from memory.
            telemetry.count("planner.sealed.store_failed")

    def _from_sealed(
        self, fp: str, sealed: SealedProgram, backend: str | None
    ) -> CompiledPermutation:
        """A lazy handle over a sealed sidecar hit.

        Applies are served from the sealed maps immediately; the v3
        plan is rehydrated (or, if its file has meanwhile vanished,
        re-planned from the sealed scatter map — which *is* the
        permutation) only when a caller needs the full program.
        """

        def loader() -> _Loaded:
            plan = (
                self.disk.load(fp) if self.disk is not None else None
            )
            if plan is None:
                with telemetry.span(
                    "planner.plan", engine=sealed.engine
                ):
                    plan = get_engine(sealed.engine).plan(
                        sealed.scatter,
                        width=sealed.width,
                        backend=backend or self.backend,
                    )
                with self._lock:
                    self.plans += 1
                telemetry.count("planner.planned")
                if self.disk is not None:
                    self.disk.store(fp, plan,
                                    self.pipeline.signature())
            program, cert, _proven = self._optimize_validated(plan)
            return plan, program, cert

        return CompiledPermutation(
            engine=None,
            program=None,
            fingerprint=fp,
            pipeline_signature=self.pipeline.signature(),
            semantic_certificate=sealed.certificate,
            sealed=sealed,
            loader=loader,
        )

    def compile_sharded(
        self,
        p: np.ndarray,
        d: int,
        engine: str = "scheduled",
        width: int = 32,
        digest: str | None = None,
        backend: str | None = None,
    ) -> "tuple[CompiledPermutation, ShardedProgram]":
        """Compile ``p`` and return its proven ``d``-stripe sharding.

        The handle comes from the usual cache tiers; the sharding is
        memoized on the handle, so repeated calls with the same ``d``
        pay nothing after the first.
        """
        compiled = self.compile(
            p, engine=engine, width=width, digest=digest,
            backend=backend,
        )
        fresh = d not in compiled._shards
        sharded = compiled.shard(d)
        if fresh:
            with self._lock:
                self.shard_plans += 1
            telemetry.count("planner.sharded")
        return compiled, sharded

    def _optimize_validated(
        self, plan: Any
    ) -> tuple[KernelProgram, SemanticCertificate, bool]:
        """Optimize a plan's program under translation validation.

        Runs the pipeline in ``validate=True`` mode and certifies the
        result against the requested permutation.  On refutation the
        compile is *not* failed: the raw (unoptimized) program — which
        must itself denote the requested permutation, or
        :class:`~repro.errors.SemanticValidationError` is raised — is
        served instead, the ``planner.semantic.rejected`` telemetry
        counter is bumped, and the returned ``proven`` flag is False so
        callers refuse to cache (or seal) the handle.
        """
        raw = plan.lower()
        requested = np.asarray(plan.p)
        signature = self.pipeline.signature()
        try:
            optimized = self.pipeline.run(raw, validate=True)
            cert = validate_translation(
                raw, optimized, requested=requested,
                pipeline_signature=signature,
            )
            if cert.ok:
                return optimized, cert, True
        except SemanticValidationError as exc:
            cert = exc.certificate
        telemetry.count("planner.semantic.rejected")
        with self._lock:
            self.semantic_rejections += 1
        blame = getattr(cert, "blame", None) or "<pipeline>"
        telemetry.count("planner.semantic.rejected." + blame)
        # Fall back to the raw program — still proved against the
        # requested permutation, because an unproven optimization must
        # degrade to slower, never to wrong.
        fallback = validate_translation(raw, raw, requested=requested)
        if not fallback.ok:
            raise SemanticValidationError(
                f"lowered program of engine "
                f"{getattr(type(plan), 'engine_name', '?')!r} does not "
                f"denote the requested permutation: "
                f"{fallback.summary()}",
                certificate=fallback,
            )
        return raw, fallback, False

    def _flight(self, fingerprint: str) -> threading.Lock:
        """The single-flight lock serialising cold compiles of one
        fingerprint (created on demand, kept for the planner's life —
        the population is bounded by distinct registrations)."""
        with self._lock:
            return self._inflight.setdefault(
                fingerprint, threading.Lock()
            )

    def warm_from_disk(self, fingerprint: str) -> bool:
        """Promote one disk entry into the memory tier; True on hit.

        Prefers the sealed sidecar (no v3 rehydration); falls back to
        the full plan, sealing it on the way in so the sidecar exists
        next time.
        """
        if self.disk is None:
            return False
        sealed = self.disk.load_sealed(fingerprint)
        if (
            sealed is not None
            and sealed.meta.get("pipeline")
            == self.pipeline.signature()
        ):
            # The sidecar's proof is bound to the pipeline that issued
            # it; a foreign-pipeline fingerprint falls through to the
            # full plan, where this planner must re-prove it.
            self.memory.put(
                fingerprint,
                self._from_sealed(fingerprint, sealed, None),
            )
            return True
        plan = self.disk.load(fingerprint)
        if plan is None:
            return False
        program, cert, proven = self._optimize_validated(plan)
        if not proven:
            # An unproven optimization must not be pinned in memory.
            return False
        fresh = self._seal(plan, program, cert)
        self.memory.put(
            fingerprint,
            CompiledPermutation(
                engine=plan,
                program=program,
                fingerprint=fingerprint,
                pipeline_signature=self.pipeline.signature(),
                semantic_certificate=cert,
                sealed=fresh,
            ),
        )
        if fresh is not None:
            self._store_sealed(fingerprint, fresh)
        return True

    def stats(self) -> dict:
        """Merged hit/miss/eviction counters across all tiers."""
        merged = {
            "cold_plans": self.plans,
            "shard_plans": self.shard_plans,
            "sealed_plans": self.sealed_plans,
            "semantic_rejections": self.semantic_rejections,
        }
        merged.update(self.memory.stats())
        if self.disk is not None:
            merged.update(self.disk.stats())
        return merged

    def describe(self) -> str:
        lines = [f"planner: pipeline {self.pipeline.signature()}"]
        for key, value in sorted(self.stats().items()):
            lines.append(f"  {key:<18} {value}")
        return "\n".join(lines)
