"""Content-addressed identities for permutations and plans.

Planning is expensive (the König colouring is the whole offline
phase); applying is cheap.  To amortize planning across calls the
planner needs a *name* for "this exact permutation, planned by this
engine at this width, optimized by this pipeline" that is stable
across processes and machines.  Two SHA-256 digests provide it:

``permutation_digest(p)``
    Identity of the permutation itself: length plus the canonical
    little-endian ``int64`` bytes of the array.  Computed once per
    registration and reused for every engine hop (the resilience
    chain's fallback does not re-hash).

``plan_fingerprint(digest, engine, width, pipeline)``
    Identity of a *compiled* plan: the permutation digest scoped by
    engine name, planning width, and the pass-pipeline signature
    (which embeds :data:`~repro.passes.framework.PIPELINE_VERSION`).
    Changing any ingredient — including bumping a pass — yields a new
    fingerprint, so stale cache entries are never served, merely
    orphaned.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import ValidationError


def permutation_digest(p: np.ndarray) -> str:
    """SHA-256 hex digest of a permutation array (canonical form)."""
    arr = np.ascontiguousarray(np.asarray(p, dtype=np.int64))
    if arr.ndim != 1:
        raise ValidationError(
            f"permutation must be 1-D, got shape {arr.shape}"
        )
    digest = hashlib.sha256()
    digest.update(b"perm-v1")
    digest.update(str(arr.shape[0]).encode())
    digest.update(arr.tobytes())
    return digest.hexdigest()


def plan_fingerprint(
    digest: str, engine: str, width: int, pipeline: str
) -> str:
    """SHA-256 hex digest naming one compiled plan.

    ``digest`` is a :func:`permutation_digest`; ``pipeline`` is a
    :meth:`~repro.passes.framework.PassPipeline.signature` string.
    """
    h = hashlib.sha256()
    for part in ("plan-v1", digest, engine, str(int(width)), pipeline):
        h.update(part.encode())
        h.update(b"\x00")
    return h.hexdigest()


def shard_fingerprint(fingerprint: str, d: int) -> str:
    """SHA-256 hex digest naming one ``d``-stripe sharding of a plan.

    Scopes a :func:`plan_fingerprint` by the shard count, so the same
    compiled plan sharded at different ``d`` gets distinct identities
    (the stripe boundaries — and hence the exchange — differ).
    """
    if d < 1:
        raise ValidationError(f"shard count d must be >= 1, got {d}")
    h = hashlib.sha256()
    for part in ("shard-v1", fingerprint, str(int(d))):
        h.update(part.encode())
        h.update(b"\x00")
    return h.hexdigest()
