"""The two plan-cache tiers: in-memory LRU and on-disk v3 files.

Both tiers are keyed by the content-addressed
:func:`~repro.planner.fingerprint.plan_fingerprint`, so a hit is
definitionally the right plan — there is no staleness to reason
about, only presence.

The memory tier holds live :class:`CompiledPermutation` handles
(bounded, LRU-evicted).  The disk tier stores plans in the ordinary
v3 format of :mod:`repro.core.io` — certificates and checksums
included — which buys the planner the full integrity ladder for free:
a tampered cache entry fails ``load_plan`` exactly like any corrupted
plan file, is *counted and skipped* (treated as a miss, then
overwritten by the fresh re-plan), and is never served.

Every cache event is double-booked: plain integer counters on the
cache object (inspectable without any tracer) and guarded telemetry
counters (``planner.cache.hit.memory``, ``planner.cache.miss.disk``,
``planner.cache.eviction``, ``planner.cache.corrupt``, ...) when a
tracer is active.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro import telemetry
from repro.errors import ValidationError

if TYPE_CHECKING:
    from repro.planner.compiled import CompiledPermutation


class LRUPlanCache:
    """Bounded in-memory cache of compiled permutations.

    Thread-safe: lookups, insertions and the hit/miss/eviction
    counters are guarded by one lock, so concurrent server workers
    never lose an increment or corrupt the recency order.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValidationError(
                f"cache capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._entries: OrderedDict[str, CompiledPermutation] = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def get(self, fingerprint: str) -> CompiledPermutation | None:
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self.misses += 1
            else:
                self._entries.move_to_end(fingerprint)
                self.hits += 1
        if entry is None:
            telemetry.count("planner.cache.miss.memory")
            return None
        telemetry.count("planner.cache.hit.memory")
        return entry

    def put(
        self, fingerprint: str, compiled: CompiledPermutation
    ) -> None:
        evicted = 0
        with self._lock:
            self._entries[fingerprint] = compiled
            self._entries.move_to_end(fingerprint)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                evicted += 1
        for _ in range(evicted):
            telemetry.count("planner.cache.eviction")

    def get_if_present(
        self, fingerprint: str
    ) -> CompiledPermutation | None:
        """Like :meth:`get`, but absence is not counted as a miss —
        the accessor the planner's single-flight recheck uses so a
        cold compile does not book two misses."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is not None:
                self._entries.move_to_end(fingerprint)
                self.hits += 1
        if entry is not None:
            telemetry.count("planner.cache.hit.memory")
        return entry

    def invalidate(self, fingerprint: str) -> bool:
        """Drop one entry (e.g. after its disk file was found bad or an
        operator forces a re-plan); returns whether it was resident."""
        with self._lock:
            present = self._entries.pop(fingerprint, None) is not None
            if present:
                self.invalidations += 1
        if present:
            telemetry.count("planner.cache.invalidation")
        return present

    def stats(self) -> dict:
        with self._lock:
            return {
                "memory_hits": self.hits,
                "memory_misses": self.misses,
                "memory_evictions": self.evictions,
                "memory_invalidations": self.invalidations,
                "memory_entries": len(self._entries),
                "memory_capacity": self.capacity,
            }


class DiskPlanCache:
    """On-disk plan cache: one v3 ``.npz`` per fingerprint.

    Entries are ordinary :func:`repro.core.io.save_plan` files named
    ``<fingerprint>.npz``, stamped with pipeline/fingerprint
    provenance.  Loading reuses :func:`repro.core.io.load_plan`, so
    every integrity check (checksum, certificate binding and
    re-verification against the recomputed program denotation,
    structural verify) guards the cache; an entry that fails any of
    them is invalidated on the spot — deleted, counted as corrupt,
    treated as a miss — and the caller re-plans it.  Foreign files in
    the directory are ignored, never deleted.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.stores = 0

    def _count(self, field: str, name: str) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + 1)
        telemetry.count(name)

    def path_for(self, fingerprint: str) -> Path:
        return self.directory / f"{fingerprint}.npz"

    def load(self, fingerprint: str) -> Any | None:
        """The cached planned engine, or ``None`` on miss/corruption."""
        from repro.errors import PlanIntegrityError
        from repro.core.io import load_plan

        path = self.path_for(fingerprint)
        if not path.exists():
            self._count("misses", "planner.cache.miss.disk")
            return None
        try:
            plan = load_plan(path)
        except PlanIntegrityError:
            # Bit rot, tampering, or a certificate that failed
            # re-verification against the recomputed denotation: never
            # serve it, never raise through the serving path.  The
            # entry is invalidated (deleted) so it cannot poison later
            # loads, counted, and reported as a miss; the caller's
            # fresh re-plan rewrites it.
            path.unlink(missing_ok=True)
            self._count("corrupt", "planner.cache.corrupt")
            self._count("misses", "planner.cache.miss.disk")
            return None
        self._count("hits", "planner.cache.hit.disk")
        return plan

    def store(
        self,
        fingerprint: str,
        plan: Any,
        pipeline_signature: str,
    ) -> Path:
        """Persist ``plan`` under its fingerprint, atomically.

        The plan is written to a temporary sibling and moved into
        place with :func:`os.replace`, so a concurrent reader (or a
        writer crash) can observe the old entry or the new one but
        never a truncated ``.npz`` that the corruption path would have
        to heal on every later load.
        """
        from repro.core.io import save_plan

        path = self.path_for(fingerprint)
        # The suffix must end in ".npz": np.savez would otherwise
        # append it and write somewhere else.
        tmp = path.with_name(
            f".{fingerprint}.{os.getpid()}.{threading.get_ident()}"
            ".tmp.npz"
        )
        try:
            save_plan(
                tmp,
                plan,
                provenance={
                    "pipeline": pipeline_signature,
                    "fingerprint": fingerprint,
                },
            )
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        self._count("stores", "planner.cache.store.disk")
        return path

    def stats(self) -> dict:
        with self._lock:
            return {
                "disk_hits": self.hits,
                "disk_misses": self.misses,
                "disk_corrupt": self.corrupt,
                "disk_stores": self.stores,
                "disk_directory": str(self.directory),
            }
