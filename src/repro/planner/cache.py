"""The plan-cache tiers: in-memory LRU, on-disk v3 files, sealed
sidecars.

All tiers are keyed by the content-addressed
:func:`~repro.planner.fingerprint.plan_fingerprint`, so a hit is
definitionally the right plan — there is no staleness to reason
about, only presence.

The memory tier holds live :class:`CompiledPermutation` handles —
bounded two ways: by entry count (``capacity``) and, since the sealed
tier landed, by **resident bytes** (``max_bytes``), so a handful of
``n = 2^26`` sealed handles cannot pin unbounded memory while a crowd
of tiny plans still fills the count bound.

The disk tier stores plans in the ordinary v3 format of
:mod:`repro.core.io` — certificates and checksums included — which
buys the planner the full integrity ladder for free: a tampered cache
entry fails ``load_plan`` exactly like any corrupted plan file, is
*counted and skipped* (treated as a miss, then overwritten by the
fresh re-plan), and is never served.  Next to each plan the tier keeps
a **sealed sidecar** (``<fingerprint>.sealed.npz``): the plan's proven
flat gather, delta-encoded and checksum-bound to the plan's payload
SHA-256, loadable in milliseconds without rehydrating the v3 file.  A
corrupt sidecar costs a re-seal from the plan, never a re-plan.  The
directory itself is bounded by ``max_bytes`` with LRU eviction (plan
and sidecar evicted together); foreign files are ignored, never
deleted or accounted.

Every cache event is double-booked: plain integer counters on the
cache object (inspectable without any tracer) and guarded telemetry
counters (``planner.cache.hit.memory``, ``planner.cache.miss.disk``,
``planner.cache.eviction``, ``planner.sealed.hit.disk``, ...) when a
tracer is active.
"""

from __future__ import annotations

import os
import re
import threading
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro import telemetry
from repro.errors import ValidationError

if TYPE_CHECKING:
    from repro.ir.sealed import SealedProgram
    from repro.planner.compiled import CompiledPermutation

#: Disk-cache entries are content-addressed SHA-256 hex fingerprints;
#: anything else in the directory is foreign and left alone.
_FINGERPRINT_RE = re.compile(r"\A[0-9a-f]{64}\Z")


def _entry_bytes(compiled: "CompiledPermutation") -> int:
    """Resident bytes a handle pins in the memory tier."""
    sizer = getattr(compiled, "resident_bytes", None)
    if callable(sizer):
        return int(sizer())
    return 0


class LRUPlanCache:
    """Bounded in-memory cache of compiled permutations.

    Bounded by entry count (``capacity``) and, optionally, by the
    resident bytes of the held handles' programs and sealed indices
    (``max_bytes``) — whichever bound is exceeded evicts in LRU order,
    though the most recent entry is always admitted (a single handle
    larger than ``max_bytes`` occupies the cache alone rather than
    being refused).

    Thread-safe: lookups, insertions and the hit/miss/eviction
    counters are guarded by one lock, so concurrent server workers
    never lose an increment or corrupt the recency order.
    """

    def __init__(
        self, capacity: int = 64, max_bytes: int | None = None
    ) -> None:
        if capacity < 1:
            raise ValidationError(
                f"cache capacity must be >= 1, got {capacity}"
            )
        if max_bytes is not None and max_bytes < 1:
            raise ValidationError(
                f"cache max_bytes must be >= 1, got {max_bytes}"
            )
        self.capacity = capacity
        self.max_bytes = max_bytes
        self._entries: OrderedDict[str, CompiledPermutation] = (
            OrderedDict()
        )
        self._nbytes: dict[str, int] = {}
        self._lock = threading.Lock()
        self.bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def get(self, fingerprint: str) -> CompiledPermutation | None:
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self.misses += 1
            else:
                self._entries.move_to_end(fingerprint)
                self.hits += 1
        if entry is None:
            telemetry.count("planner.cache.miss.memory")
            return None
        telemetry.count("planner.cache.hit.memory")
        return entry

    def _over_budget(self) -> bool:
        # Caller holds the lock.
        if len(self._entries) > self.capacity:
            return True
        return (
            self.max_bytes is not None
            and self.bytes > self.max_bytes
            and len(self._entries) > 1
        )

    def put(
        self, fingerprint: str, compiled: CompiledPermutation
    ) -> None:
        size = _entry_bytes(compiled)
        evicted = 0
        with self._lock:
            if fingerprint in self._entries:
                self.bytes -= self._nbytes.get(fingerprint, 0)
            self._entries[fingerprint] = compiled
            self._nbytes[fingerprint] = size
            self.bytes += size
            self._entries.move_to_end(fingerprint)
            while self._over_budget():
                victim, _ = self._entries.popitem(last=False)
                self.bytes -= self._nbytes.pop(victim, 0)
                self.evictions += 1
                evicted += 1
        for _ in range(evicted):
            telemetry.count("planner.cache.eviction")

    def get_if_present(
        self, fingerprint: str
    ) -> CompiledPermutation | None:
        """Like :meth:`get`, but absence is not counted as a miss —
        the accessor the planner's single-flight recheck uses so a
        cold compile does not book two misses."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is not None:
                self._entries.move_to_end(fingerprint)
                self.hits += 1
        if entry is not None:
            telemetry.count("planner.cache.hit.memory")
        return entry

    def invalidate(self, fingerprint: str) -> bool:
        """Drop one entry (e.g. after its disk file was found bad or an
        operator forces a re-plan); returns whether it was resident."""
        with self._lock:
            present = self._entries.pop(fingerprint, None) is not None
            if present:
                self.bytes -= self._nbytes.pop(fingerprint, 0)
                self.invalidations += 1
        if present:
            telemetry.count("planner.cache.invalidation")
        return present

    def stats(self) -> dict:
        with self._lock:
            return {
                "memory_hits": self.hits,
                "memory_misses": self.misses,
                "memory_evictions": self.evictions,
                "memory_invalidations": self.invalidations,
                "memory_entries": len(self._entries),
                "memory_capacity": self.capacity,
                "memory_bytes": self.bytes,
                "memory_max_bytes": self.max_bytes,
            }


class DiskPlanCache:
    """On-disk plan cache: one v3 ``.npz`` per fingerprint, plus an
    optional sealed sidecar, bounded by total bytes.

    Entries are ordinary :func:`repro.core.io.save_plan` files named
    ``<fingerprint>.npz``, stamped with pipeline/fingerprint
    provenance.  Loading reuses :func:`repro.core.io.load_plan`, so
    every integrity check (checksum, certificate binding and
    re-verification against the recomputed program denotation,
    structural verify) guards the cache; an entry that fails any of
    them is invalidated on the spot — deleted, counted as corrupt,
    treated as a miss — and the caller re-plans it.

    Sealed sidecars (``<fingerprint>.sealed.npz``,
    :func:`repro.core.io.save_sealed`) carry the plan's proven flat
    gather, bound to the plan file's payload checksum.  A sidecar that
    fails any proof on load is deleted and counted
    (``planner.sealed.corrupt``); the caller heals by re-sealing from
    the v3 plan.  ``max_bytes`` bounds the summed size of accounted
    entries with LRU eviction — plan and sidecar leave together.
    Foreign files in the directory are ignored, never deleted.
    """

    def __init__(
        self, directory: str | Path, max_bytes: int | None = None
    ) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValidationError(
                f"disk cache max_bytes must be >= 1, got {max_bytes}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._sizes: OrderedDict[str, int] = OrderedDict()
        self.bytes = 0
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.stores = 0
        self.evictions = 0
        self.sealed_hits = 0
        self.sealed_misses = 0
        self.sealed_corrupt = 0
        self.sealed_stores = 0
        self._scan()

    def _count(self, field: str, name: str) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + 1)
        telemetry.count(name)

    def path_for(self, fingerprint: str) -> Path:
        return self.directory / f"{fingerprint}.npz"

    def sealed_path_for(self, fingerprint: str) -> Path:
        return self.directory / f"{fingerprint}.sealed.npz"

    # -- byte accounting / eviction ------------------------------------

    def _scan(self) -> None:
        """Seed the byte accounting from files already on disk,
        oldest-modified first (their LRU order as far as a fresh
        process can know it)."""
        found: dict[str, float] = {}
        for path in self.directory.glob("*.npz"):
            name = path.name
            fp = (
                name[: -len(".sealed.npz")]
                if name.endswith(".sealed.npz")
                else path.stem
            )
            if not _FINGERPRINT_RE.match(fp):
                continue
            try:
                mtime = path.stat().st_mtime
            except OSError:
                continue
            found[fp] = max(found.get(fp, 0.0), mtime)
        with self._lock:
            for fp in sorted(found, key=found.__getitem__):
                self._account_locked(fp)

    def _entry_size(self, fingerprint: str) -> int:
        size = 0
        for path in (
            self.path_for(fingerprint),
            self.sealed_path_for(fingerprint),
        ):
            try:
                size += path.stat().st_size
            except OSError:
                pass
        return size

    def _account_locked(self, fingerprint: str) -> None:
        # Caller holds the lock.
        size = self._entry_size(fingerprint)
        self.bytes -= self._sizes.pop(fingerprint, 0)
        if size > 0:
            self._sizes[fingerprint] = size
            self.bytes += size

    def _touch(self, fingerprint: str) -> None:
        with self._lock:
            if fingerprint in self._sizes:
                self._sizes.move_to_end(fingerprint)

    def _account(self, fingerprint: str) -> None:
        """Re-stat one entry and evict LRU entries over ``max_bytes``.

        The just-touched entry is newest in LRU order, so it is only
        evicted when it alone exceeds the bound and nothing older is
        left to shed first.
        """
        victims: list[str] = []
        with self._lock:
            self._account_locked(fingerprint)
            while (
                self.max_bytes is not None
                and self.bytes > self.max_bytes
                and len(self._sizes) > 1
            ):
                victim, size = self._sizes.popitem(last=False)
                self.bytes -= size
                self.evictions += 1
                victims.append(victim)
        for victim in victims:
            self.path_for(victim).unlink(missing_ok=True)
            self.sealed_path_for(victim).unlink(missing_ok=True)
            telemetry.count("planner.cache.eviction.disk")

    # -- v3 plan files -------------------------------------------------

    def load(self, fingerprint: str) -> Any | None:
        """The cached planned engine, or ``None`` on miss/corruption."""
        from repro.core.io import load_plan
        from repro.errors import PlanIntegrityError

        path = self.path_for(fingerprint)
        if not path.exists():
            self._count("misses", "planner.cache.miss.disk")
            return None
        try:
            plan = load_plan(path)
        except PlanIntegrityError:
            # Bit rot, tampering, or a certificate that failed
            # re-verification against the recomputed denotation: never
            # serve it, never raise through the serving path.  The
            # entry is invalidated (deleted) so it cannot poison later
            # loads, counted, and reported as a miss; the caller's
            # fresh re-plan rewrites it.  The sealed sidecar falls
            # with its plan: it binds to a checksum that no longer
            # names anything trustworthy.
            path.unlink(missing_ok=True)
            self.sealed_path_for(fingerprint).unlink(missing_ok=True)
            self._account(fingerprint)
            self._count("corrupt", "planner.cache.corrupt")
            self._count("misses", "planner.cache.miss.disk")
            return None
        self._touch(fingerprint)
        self._count("hits", "planner.cache.hit.disk")
        return plan

    def store(
        self,
        fingerprint: str,
        plan: Any,
        pipeline_signature: str,
    ) -> Path:
        """Persist ``plan`` under its fingerprint, atomically.

        The plan is written to a temporary sibling and moved into
        place with :func:`os.replace`, so a concurrent reader (or a
        writer crash) can observe the old entry or the new one but
        never a truncated ``.npz`` that the corruption path would have
        to heal on every later load.
        """
        from repro.core.io import save_plan

        path = self.path_for(fingerprint)
        # The suffix must end in ".npz": np.savez would otherwise
        # append it and write somewhere else.
        tmp = path.with_name(
            f".{fingerprint}.{os.getpid()}.{threading.get_ident()}"
            ".tmp.npz"
        )
        try:
            save_plan(
                tmp,
                plan,
                provenance={
                    "pipeline": pipeline_signature,
                    "fingerprint": fingerprint,
                },
            )
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        self._count("stores", "planner.cache.store.disk")
        self._account(fingerprint)
        return path

    # -- sealed sidecars -----------------------------------------------

    def load_sealed(self, fingerprint: str) -> "SealedProgram | None":
        """The entry's sealed sidecar, re-proved, or ``None``.

        A sidecar that fails any of its proofs (checksum, delta
        decode, denotation digest, mutual-inverse, plan binding) is
        deleted and counted corrupt — the *plan* file is untouched, so
        the caller heals by re-sealing from the still-trusted v3
        entry.
        """
        from repro.core.io import load_sealed, read_plan_checksum
        from repro.errors import PlanIntegrityError

        path = self.sealed_path_for(fingerprint)
        if not path.exists():
            self._count("sealed_misses", "planner.sealed.miss.disk")
            return None
        expected = None
        plan_path = self.path_for(fingerprint)
        if plan_path.exists():
            try:
                expected = read_plan_checksum(plan_path)
            except PlanIntegrityError:
                expected = None
        try:
            sealed = load_sealed(path, expected_plan_sha=expected)
        except PlanIntegrityError:
            path.unlink(missing_ok=True)
            self._account(fingerprint)
            self._count("sealed_corrupt", "planner.sealed.corrupt")
            self._count("sealed_misses", "planner.sealed.miss.disk")
            return None
        self._touch(fingerprint)
        self._count("sealed_hits", "planner.sealed.hit.disk")
        return sealed

    def store_sealed(
        self, fingerprint: str, sealed: "SealedProgram"
    ) -> Path:
        """Persist a sealed sidecar next to its plan, atomically."""
        from repro.core.io import save_sealed

        path = self.sealed_path_for(fingerprint)
        tmp = path.with_name(
            f".{fingerprint}.{os.getpid()}.{threading.get_ident()}"
            ".sealed.tmp.npz"
        )
        try:
            save_sealed(tmp, sealed)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        self._count("sealed_stores", "planner.sealed.store.disk")
        self._account(fingerprint)
        return path

    def stats(self) -> dict:
        with self._lock:
            return {
                "disk_hits": self.hits,
                "disk_misses": self.misses,
                "disk_corrupt": self.corrupt,
                "disk_stores": self.stores,
                "disk_evictions": self.evictions,
                "disk_bytes": self.bytes,
                "disk_max_bytes": self.max_bytes,
                "disk_entries": len(self._sizes),
                "sealed_hits": self.sealed_hits,
                "sealed_misses": self.sealed_misses,
                "sealed_corrupt": self.sealed_corrupt,
                "sealed_stores": self.sealed_stores,
                "disk_directory": str(self.directory),
            }
