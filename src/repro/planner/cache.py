"""The two plan-cache tiers: in-memory LRU and on-disk v3 files.

Both tiers are keyed by the content-addressed
:func:`~repro.planner.fingerprint.plan_fingerprint`, so a hit is
definitionally the right plan — there is no staleness to reason
about, only presence.

The memory tier holds live :class:`CompiledPermutation` handles
(bounded, LRU-evicted).  The disk tier stores plans in the ordinary
v3 format of :mod:`repro.core.io` — certificates and checksums
included — which buys the planner the full integrity ladder for free:
a tampered cache entry fails ``load_plan`` exactly like any corrupted
plan file, is *counted and skipped* (treated as a miss, then
overwritten by the fresh re-plan), and is never served.

Every cache event is double-booked: plain integer counters on the
cache object (inspectable without any tracer) and guarded telemetry
counters (``planner.cache.hit.memory``, ``planner.cache.miss.disk``,
``planner.cache.eviction``, ``planner.cache.corrupt``, ...) when a
tracer is active.
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro import telemetry
from repro.errors import ValidationError

if TYPE_CHECKING:
    from repro.planner.compiled import CompiledPermutation


class LRUPlanCache:
    """Bounded in-memory cache of compiled permutations."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValidationError(
                f"cache capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._entries: OrderedDict[str, CompiledPermutation] = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def get(self, fingerprint: str) -> CompiledPermutation | None:
        entry = self._entries.get(fingerprint)
        if entry is None:
            self.misses += 1
            telemetry.count("planner.cache.miss.memory")
            return None
        self._entries.move_to_end(fingerprint)
        self.hits += 1
        telemetry.count("planner.cache.hit.memory")
        return entry

    def put(
        self, fingerprint: str, compiled: CompiledPermutation
    ) -> None:
        self._entries[fingerprint] = compiled
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            telemetry.count("planner.cache.eviction")

    def stats(self) -> dict:
        return {
            "memory_hits": self.hits,
            "memory_misses": self.misses,
            "memory_evictions": self.evictions,
            "memory_entries": len(self._entries),
            "memory_capacity": self.capacity,
        }


class DiskPlanCache:
    """On-disk plan cache: one v3 ``.npz`` per fingerprint.

    Entries are ordinary :func:`repro.core.io.save_plan` files named
    ``<fingerprint>.npz``, stamped with pipeline/fingerprint
    provenance.  Loading reuses :func:`repro.core.io.load_plan`, so
    every integrity check (checksum, certificate binding, structural
    verify) guards the cache; an entry that fails any of them is
    counted as corrupt and treated as a miss — the caller re-plans and
    overwrites it.  Foreign files in the directory are ignored, never
    deleted.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.stores = 0

    def path_for(self, fingerprint: str) -> Path:
        return self.directory / f"{fingerprint}.npz"

    def load(self, fingerprint: str) -> Any | None:
        """The cached planned engine, or ``None`` on miss/corruption."""
        from repro.errors import PlanIntegrityError
        from repro.core.io import load_plan

        path = self.path_for(fingerprint)
        if not path.exists():
            self.misses += 1
            telemetry.count("planner.cache.miss.disk")
            return None
        try:
            plan = load_plan(path)
        except PlanIntegrityError:
            # Bit rot or tampering: never serve it.  Count it, report
            # a miss; the caller's fresh re-plan overwrites the entry.
            self.corrupt += 1
            self.misses += 1
            telemetry.count("planner.cache.corrupt")
            telemetry.count("planner.cache.miss.disk")
            return None
        self.hits += 1
        telemetry.count("planner.cache.hit.disk")
        return plan

    def store(
        self,
        fingerprint: str,
        plan: Any,
        pipeline_signature: str,
    ) -> Path:
        from repro.core.io import save_plan

        path = self.path_for(fingerprint)
        save_plan(
            path,
            plan,
            provenance={
                "pipeline": pipeline_signature,
                "fingerprint": fingerprint,
            },
        )
        self.stores += 1
        telemetry.count("planner.cache.store.disk")
        return path

    def stats(self) -> dict:
        return {
            "disk_hits": self.hits,
            "disk_misses": self.misses,
            "disk_corrupt": self.corrupt,
            "disk_stores": self.stores,
            "disk_directory": str(self.directory),
        }
