"""Compile-once / apply-many: fingerprints, plan caches, the Planner.

The paper's central asymmetry — an expensive offline König-colouring
*plan* phase versus a cheap three-step *apply* phase — only pays off
when one plan serves many applications.  This package is the
amortization layer:

* :func:`permutation_digest` / :func:`plan_fingerprint` — stable
  content-addressed identities (see :mod:`repro.planner.fingerprint`).
* :class:`LRUPlanCache` / :class:`DiskPlanCache` — the two cache
  tiers; the disk tier stores ordinary certified v3 plan files, so
  cache integrity is plan-file integrity.
* :class:`Planner` — ``compile(p)`` walks memory → disk → cold plan
  and returns a :class:`CompiledPermutation` whose ``apply`` /
  ``apply_batch`` never re-plan.

Typical use::

    from repro.planner import Planner

    planner = Planner(cache_dir="~/.cache/repro-plans")
    compiled = planner.compile(p, engine="scheduled", width=32)
    for payload in stream:
        out = compiled.apply(payload)      # no planning, ever
"""

from __future__ import annotations

from repro.planner.cache import DiskPlanCache, LRUPlanCache
from repro.planner.compiled import CompiledPermutation, Planner
from repro.planner.fingerprint import (
    permutation_digest,
    plan_fingerprint,
    shard_fingerprint,
)

__all__ = [
    "CompiledPermutation",
    "DiskPlanCache",
    "LRUPlanCache",
    "Planner",
    "permutation_digest",
    "plan_fingerprint",
    "shard_fingerprint",
]
