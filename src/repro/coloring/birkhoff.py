"""Birkhoff–von Neumann decomposition of balanced integer matrices.

A non-negative integer matrix whose rows and columns all sum to the
same value ``S`` is ``S`` times a doubly-stochastic matrix, and by the
Birkhoff–von Neumann theorem decomposes into a weighted sum of
permutation matrices.  This is the *count-matrix* view of König edge
colouring: the count matrix of a ``D``-regular bipartite multigraph is
balanced with ``S = D``, and each extracted permutation matrix is one
(or, with weight ``c``, ``c`` consecutive) colour classes.

The decomposition extracts at most ``nnz - 2m + 2`` permutation
matrices (far fewer than ``D`` when multiplicities are large), so it is
the preferred representation when only the *count* structure matters —
the ablation benchmark compares it against per-edge colouring.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import maximum_bipartite_matching

from repro.errors import ColoringError


def birkhoff_decomposition(
    counts: np.ndarray,
) -> list[tuple[int, np.ndarray]]:
    """Decompose a balanced non-negative integer matrix.

    Returns a list of ``(weight, perm)`` pairs where ``perm[u]`` is the
    column matched to row ``u``, and
    ``counts == sum(weight * P(perm))`` with each ``P`` a permutation
    matrix.  Raises :class:`~repro.errors.ColoringError` if the matrix
    is not square and balanced.
    """
    counts = np.array(counts, dtype=np.int64, copy=True)
    if counts.ndim != 2 or counts.shape[0] != counts.shape[1]:
        raise ColoringError(
            f"count matrix must be square, got shape {counts.shape}"
        )
    if counts.size == 0:
        return []
    if counts.min() < 0:
        raise ColoringError("count matrix entries must be non-negative")
    row_sums = counts.sum(axis=1)
    col_sums = counts.sum(axis=0)
    total = int(row_sums[0])
    if np.any(row_sums != total) or np.any(col_sums != total):
        raise ColoringError(
            "count matrix is not balanced: row/column sums differ"
        )

    result: list[tuple[int, np.ndarray]] = []
    remaining = total
    while remaining > 0:
        rows, cols = np.nonzero(counts)
        data = np.ones(rows.shape[0], dtype=np.int8)
        graph = csr_matrix(
            (data, (rows, cols)), shape=counts.shape
        )
        match = maximum_bipartite_matching(graph, perm_type="column")
        if np.any(match < 0):
            raise ColoringError(
                "balanced matrix unexpectedly has no perfect matching"
            )
        perm = match.astype(np.int64)
        weight = int(counts[np.arange(counts.shape[0]), perm].min())
        counts[np.arange(counts.shape[0]), perm] -= weight
        result.append((weight, perm))
        remaining -= weight
    return result


def recompose(
    decomposition: list[tuple[int, np.ndarray]], size: int
) -> np.ndarray:
    """Rebuild the count matrix from a Birkhoff decomposition.

    Inverse of :func:`birkhoff_decomposition`; used by tests to verify
    exact reconstruction.
    """
    counts = np.zeros((size, size), dtype=np.int64)
    for weight, perm in decomposition:
        counts[np.arange(size), perm] += weight
    return counts
