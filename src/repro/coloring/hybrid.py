"""Hybrid edge colouring: Euler splits + matching extraction.

The Euler-split backend needs a power-of-two degree; the matching
backend pays one Hopcroft–Karp per colour.  The hybrid takes the best
of both for *any* degree:

* **even** degree: one (vectorised) Euler split, recurse on both
  halves — no matching needed;
* **odd** degree: extract a single perfect matching (one colour
  class), leaving an even-degree multigraph.

A degree-``D`` graph therefore needs at most ``popcount``-ish many
matchings (one per odd level, ≤ log₂ D), against ``D`` for the pure
matching backend — e.g. degree 48 = 2⁴·3 costs exactly one matching.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import maximum_bipartite_matching

from repro.coloring.euler import _euler_split_arrays
from repro.coloring.multigraph import RegularBipartiteMultigraph
from repro.errors import ColoringError


def _extract_matching_edges(
    left: np.ndarray, right: np.ndarray, num_left: int, num_right: int
) -> np.ndarray:
    """Return one edge index per left node forming a perfect matching.

    Parallel edges collapse for the matching itself; the returned
    indices pick one concrete instance per matched pair.
    """
    data = np.ones(left.shape[0], dtype=np.int8)
    graph = csr_matrix(
        (data, (left, right)), shape=(num_left, num_right)
    )
    match = maximum_bipartite_matching(graph, perm_type="column")
    if np.any(match < 0):
        raise ColoringError(
            "no perfect matching found; the multigraph is not regular"
        )
    # First edge instance of each (u, match[u]) pair.
    key = left * np.int64(max(num_right, 1)) + right
    wanted = (
        np.arange(num_left, dtype=np.int64)
        * np.int64(max(num_right, 1))
        + match
    )
    order = np.argsort(key, kind="stable")
    pos = np.searchsorted(key[order], wanted)
    chosen = order[pos]
    if not np.array_equal(key[chosen], wanted):  # pragma: no cover
        raise ColoringError("matching produced a non-existent edge")
    return chosen


def hybrid_coloring(graph: RegularBipartiteMultigraph) -> np.ndarray:
    """König colouring of any regular bipartite multigraph.

    Colours are ``0 .. degree-1``; verified proper by the shared
    checker in tests.
    """
    num_edges = graph.num_edges
    if num_edges == 0:
        return np.empty(0, dtype=np.int64)
    if graph.num_left != graph.num_right:
        raise ColoringError(
            "hybrid colouring needs equal sides, got "
            f"{graph.num_left} != {graph.num_right}"
        )
    colors = np.full(num_edges, -1, dtype=np.int64)

    def go(
        left: np.ndarray,
        right: np.ndarray,
        ids: np.ndarray,
        degree: int,
        base: int,
    ) -> None:
        if degree == 0:
            return
        if degree == 1:
            colors[ids] = base
            return
        if degree % 2 == 1:
            matched = _extract_matching_edges(
                left, right, graph.num_left, graph.num_right
            )
            colors[ids[matched]] = base
            keep = np.ones(left.shape[0], dtype=bool)
            keep[matched] = False
            go(left[keep], right[keep], ids[keep], degree - 1, base + 1)
            return
        half = _euler_split_arrays(
            left, right, graph.num_left, graph.num_right
        )
        go(left[half], right[half], ids[half], degree // 2, base)
        go(
            left[~half], right[~half], ids[~half],
            degree // 2, base + degree // 2,
        )

    go(
        graph.left,
        graph.right,
        np.arange(num_edges, dtype=np.int64),
        graph.degree,
        0,
    )
    if np.any(colors < 0):  # pragma: no cover - regularity guards this
        raise ColoringError("some edges were never coloured")
    return colors
