"""König edge colouring of regular bipartite multigraphs.

The scheduled permutation algorithm rests on König's theorem (paper
Theorem 6): *a regular bipartite multigraph of degree k is
k-edge-colourable*.  The colouring is used twice:

* **globally** (Section VII) — a degree-``sqrt(n)`` multigraph between
  source rows and destination rows; the colour of an element is the
  intermediate column it is routed through, and
* **per row** (Section VI) — a degree-``sqrt(n)/w`` multigraph between
  the ``w`` source banks and ``w`` destination banks of the shared
  memory; the colouring yields the conflict-free schedule arrays ``s``
  and ``t``.

Three interchangeable backends are provided:

* :func:`euler_split_coloring` — recursive Euler splitting, exact for
  power-of-two degrees (all sizes in the paper), O(E log D);
* :func:`matching_coloring` — repeated perfect-matching extraction via
  :func:`scipy.sparse.csgraph.maximum_bipartite_matching` (any degree);
* :func:`hopcroft_karp_coloring` — dependency-free pure-Python
  Hopcroft–Karp variant (any degree), used as a cross-check.

All backends return one colour per *edge instance* and are verified by
:func:`verify_edge_coloring`.
"""

from repro.coloring.multigraph import RegularBipartiteMultigraph
from repro.coloring.euler import euler_split, euler_split_coloring
from repro.coloring.matching import (
    hopcroft_karp_coloring,
    hopcroft_karp_matching,
    matching_coloring,
)
from repro.coloring.birkhoff import birkhoff_decomposition
from repro.coloring.hybrid import hybrid_coloring
from repro.coloring.verify import is_proper_edge_coloring, verify_edge_coloring

BACKENDS = {
    "euler": euler_split_coloring,
    "hybrid": hybrid_coloring,
    "matching": matching_coloring,
    "hopcroft-karp": hopcroft_karp_coloring,
}


def edge_coloring(graph, backend: str = "auto"):
    """Colour a regular bipartite multigraph with ``degree`` colours.

    ``backend`` is ``"euler"``, ``"hybrid"``, ``"matching"``,
    ``"hopcroft-karp"`` or ``"auto"`` (Euler splitting when the degree
    is a power of two — always the case for the paper's sizes — else
    the hybrid split+matching backend).  Returns an ``int64`` array of
    one colour per edge.
    """
    from repro.errors import ColoringError
    from repro.util.validation import is_power_of_two

    if backend == "auto":
        backend = "euler" if is_power_of_two(graph.degree) else "hybrid"
    try:
        fn = BACKENDS[backend]
    except KeyError:
        raise ColoringError(
            f"unknown colouring backend {backend!r}; expected one of "
            f"{sorted(BACKENDS)} or 'auto'"
        ) from None
    return fn(graph)


__all__ = [
    "BACKENDS",
    "RegularBipartiteMultigraph",
    "birkhoff_decomposition",
    "edge_coloring",
    "euler_split",
    "euler_split_coloring",
    "hopcroft_karp_coloring",
    "hybrid_coloring",
    "hopcroft_karp_matching",
    "is_proper_edge_coloring",
    "matching_coloring",
    "verify_edge_coloring",
]
