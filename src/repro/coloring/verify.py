"""Verification of edge colourings.

A colouring of a ``D``-regular bipartite multigraph is *proper* when no
two edges sharing a node have the same colour.  For a ``D``-regular
graph coloured with exactly ``D`` colours this is equivalent to: every
colour class is a perfect matching — which is precisely the property
the schedulers rely on (paper Section VI: "no two edges with the same
colour share a node").

These checks are used both defensively inside the planners and as the
oracle for property-based tests of all colouring backends.
"""

from __future__ import annotations

import numpy as np

from repro.coloring.multigraph import RegularBipartiteMultigraph
from repro.errors import ColoringError


def is_proper_edge_coloring(
    graph: RegularBipartiteMultigraph, colors: np.ndarray
) -> bool:
    """Return ``True`` iff ``colors`` is a proper edge colouring.

    Vectorised: a colouring is proper iff every ``(node, colour)`` pair
    occurs at most once on each side.
    """
    colors = np.asarray(colors, dtype=np.int64)
    if colors.shape != (graph.num_edges,):
        return False
    if graph.num_edges == 0:
        return True
    if colors.min() < 0:
        return False
    num_colors = int(colors.max()) + 1
    for nodes in (graph.left, graph.right):
        pair = nodes * np.int64(num_colors) + colors
        # Duplicate (node, colour) detection by sort + adjacent compare:
        # much faster than hash-based np.unique on multi-million-edge
        # planner graphs.
        pair = np.sort(pair)
        if pair.shape[0] > 1 and np.any(pair[1:] == pair[:-1]):
            return False
    return True


def verify_edge_coloring(
    graph: RegularBipartiteMultigraph,
    colors: np.ndarray,
    expect_colors: int | None = None,
) -> None:
    """Raise :class:`~repro.errors.ColoringError` unless the colouring is
    proper and (optionally) uses exactly ``expect_colors`` colours.

    For ``expect_colors == graph.degree`` (the König bound) this also
    certifies that every colour class is a *perfect* matching: with
    ``E = D * L`` edges in ``D`` classes each touching every node at
    most once, each class must touch every node exactly once.
    """
    colors = np.asarray(colors, dtype=np.int64)
    if colors.shape != (graph.num_edges,):
        raise ColoringError(
            f"colour array has shape {colors.shape}, expected ({graph.num_edges},)"
        )
    if graph.num_edges == 0:
        return
    if colors.min() < 0:
        raise ColoringError("negative colour found")
    used = np.unique(colors)
    if expect_colors is not None:
        if used.shape[0] > expect_colors or colors.max() >= expect_colors:
            raise ColoringError(
                f"colouring uses colours {used.min()}..{colors.max()} "
                f"({used.shape[0]} distinct), expected at most {expect_colors}"
            )
    if not is_proper_edge_coloring(graph, colors):
        raise ColoringError("colouring is not proper: a node sees a colour twice")
