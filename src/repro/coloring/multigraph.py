"""Regular bipartite multigraph representation.

Edges are stored as parallel arrays ``left[e] -> right[e]`` (an *edge
list*), which keeps the identity of each edge instance — essential,
because the schedulers need a colour per **element**, and distinct
elements may induce identical ``(left, right)`` pairs (parallel edges).

A count-matrix view (``counts[u, v]`` = edge multiplicity) is derived on
demand for matching-based algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import NotRegularError, SizeError


@dataclass(frozen=True)
class RegularBipartiteMultigraph:
    """A ``degree``-regular bipartite multigraph on ``L + R`` nodes.

    Parameters
    ----------
    left, right:
        Equal-length ``int64`` arrays; edge ``e`` joins left node
        ``left[e]`` to right node ``right[e]``.
    num_left, num_right:
        Number of nodes on each side.  Regularity forces
        ``num_left == num_right`` whenever there is at least one edge.
    """

    left: np.ndarray
    right: np.ndarray
    num_left: int
    num_right: int
    degree: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        left = np.ascontiguousarray(np.asarray(self.left, dtype=np.int64))
        right = np.ascontiguousarray(np.asarray(self.right, dtype=np.int64))
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)
        if left.shape != right.shape or left.ndim != 1:
            raise SizeError("left and right must be equal-length 1-D arrays")
        if self.num_left < 0 or self.num_right < 0:
            raise SizeError("node counts must be non-negative")
        if left.size:
            if left.min() < 0 or left.max() >= self.num_left:
                raise SizeError("left endpoints out of range")
            if right.min() < 0 or right.max() >= self.num_right:
                raise SizeError("right endpoints out of range")
        degree = self._check_regular()
        object.__setattr__(self, "degree", degree)

    def _check_regular(self) -> int:
        """Verify regularity and return the common degree."""
        if self.num_edges == 0:
            return 0
        left_deg = np.bincount(self.left, minlength=self.num_left)
        right_deg = np.bincount(self.right, minlength=self.num_right)
        degrees = np.unique(np.concatenate([left_deg, right_deg]))
        if degrees.size != 1:
            raise NotRegularError(
                "bipartite multigraph is not regular: degrees range "
                f"from {degrees.min()} to {degrees.max()}"
            )
        return int(degrees[0])

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls, left, right, num_left: int | None = None, num_right: int | None = None
    ) -> "RegularBipartiteMultigraph":
        """Build from edge endpoint arrays, inferring node counts if omitted."""
        left = np.asarray(left, dtype=np.int64)
        right = np.asarray(right, dtype=np.int64)
        if num_left is None:
            num_left = int(left.max()) + 1 if left.size else 0
        if num_right is None:
            num_right = int(right.max()) + 1 if right.size else 0
        return cls(left, right, num_left, num_right)

    @classmethod
    def from_count_matrix(cls, counts: np.ndarray) -> "RegularBipartiteMultigraph":
        """Build from a multiplicity matrix ``counts[u, v]``.

        Edge instances for the same ``(u, v)`` pair are emitted
        consecutively, so ``edge_buckets`` round-trips.
        """
        counts = np.asarray(counts)
        if counts.ndim != 2:
            raise SizeError("count matrix must be two-dimensional")
        if counts.size and counts.min() < 0:
            raise SizeError("count matrix entries must be non-negative")
        u, v = np.nonzero(counts)
        reps = counts[u, v].astype(np.int64)
        left = np.repeat(u.astype(np.int64), reps)
        right = np.repeat(v.astype(np.int64), reps)
        return cls(left, right, counts.shape[0], counts.shape[1])

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @property
    def num_edges(self) -> int:
        """Total number of edge instances (with multiplicity)."""
        return int(self.left.shape[0])

    def count_matrix(self) -> np.ndarray:
        """Dense multiplicity matrix ``counts[u, v]`` (int64)."""
        counts = np.zeros((self.num_left, self.num_right), dtype=np.int64)
        np.add.at(counts, (self.left, self.right), 1)
        return counts

    def edge_buckets(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Group edge ids by ``(left, right)`` pair.

        Returns ``(order, starts, keys)`` where ``order`` lists edge ids
        sorted by pair key ``left * num_right + right``, ``starts`` are
        CSR offsets into ``order`` for each unique pair, and ``keys``
        are the unique pair keys.  Matching-based colouring uses this to
        hand out one edge *instance* per extracted matching edge.
        """
        keys_all = self.left * np.int64(max(self.num_right, 1)) + self.right
        order = np.argsort(keys_all, kind="stable").astype(np.int64)
        sorted_keys = keys_all[order]
        if sorted_keys.size:
            boundaries = np.nonzero(np.diff(sorted_keys))[0] + 1
            starts = np.concatenate(
                [[0], boundaries, [sorted_keys.size]]
            ).astype(np.int64)
            keys = sorted_keys[starts[:-1]]
        else:
            starts = np.zeros(1, dtype=np.int64)
            keys = np.empty(0, dtype=np.int64)
        return order, starts, keys

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RegularBipartiteMultigraph(L={self.num_left}, R={self.num_right}, "
            f"E={self.num_edges}, degree={self.degree})"
        )
