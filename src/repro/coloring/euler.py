"""Edge colouring by recursive Euler splitting.

A regular bipartite multigraph in which every node has even degree can
be split into two regular sub-multigraphs of half the degree: walk the
edges of each connected component in closed trails and alternate —
edges traversed left-to-right go to one half, right-to-left to the
other.  Every visit through a node consumes one incoming and one
outgoing edge, so the split is exactly balanced at every node.

Recursing ``log2(D)`` times colours a degree-``D = 2**k`` multigraph
with ``D`` colours in ``O(E log D)`` total time — the constructive core
of König's theorem for the power-of-two sizes the paper uses
(``sqrt(n)`` and ``sqrt(n)/w`` are powers of two throughout Section
VIII).

The trail walk is implemented iteratively over flat NumPy-backed CSR
adjacency arrays; the only Python-level loop is the walk itself, which
touches each edge exactly once per level.
"""

from __future__ import annotations

import numpy as np

from repro import telemetry
from repro.coloring.multigraph import RegularBipartiteMultigraph
from repro.errors import ColoringError
from repro.util.validation import is_power_of_two

#: Fault-injection hook (see :mod:`repro.resilience.faults`).  ``None``
#: in production — the only cost on the happy path is this None check.
#: When set (by an active ``FaultPlan``), it is called as
#: ``_fault_hook("euler", graph)`` before colouring and may raise.
_fault_hook = None


def euler_split(graph: RegularBipartiteMultigraph) -> np.ndarray:
    """Split an even-degree regular bipartite multigraph into two halves.

    Returns a boolean array of length ``num_edges``; ``True`` marks the
    edges of the first half.  Both halves are ``degree/2``-regular.
    """
    if graph.degree % 2 != 0:
        raise ColoringError(
            f"Euler split requires an even degree, got {graph.degree}"
        )
    return _euler_split_arrays(
        graph.left, graph.right, graph.num_left, graph.num_right
    )


#: Edge-count threshold above which the vectorised split is used; the
#: Python trail walk has lower constants on tiny graphs.
_VECTORIZE_THRESHOLD = 2048


def _euler_split_arrays(
    left: np.ndarray, right: np.ndarray, num_left: int, num_right: int
) -> np.ndarray:
    """Euler split over raw edge arrays (dispatcher).

    Two implementations produce (possibly different, both valid)
    balanced splits: a pure-Python trail walk (reference; lower
    overhead on small graphs) and a fully vectorised construction
    (NumPy pointer doubling; ~10x faster on the planner's graph sizes).
    Property tests check both against the balance invariant.
    """
    if left.shape[0] >= _VECTORIZE_THRESHOLD:
        return _euler_split_vectorized(left, right, num_left, num_right)
    return _euler_split_walk(left, right, num_left, num_right)


def _euler_split_vectorized(
    left: np.ndarray, right: np.ndarray, num_left: int, num_right: int
) -> np.ndarray:
    """Vectorised Euler split by node-splitting + pointer doubling.

    1. Pair the incident edges of every node arbitrarily (consecutive
       slots of the sorted incidence list).  Each pair is a *copy* of
       the node with exactly two incident edges, so the derived
       multigraph is 2-regular and its components are even cycles.
    2. On a 2-regular bipartite multigraph, define the involutions
       ``sigma(e)`` / ``pi(e)`` = the other edge at ``e``'s left /
       right copy.  The permutation ``tau = sigma ∘ pi`` steps two
       positions along a cycle, so its orbits are exactly the two
       direction classes of each cycle — the two halves of the split.
    3. Label orbits with their minimum edge id by pointer doubling
       (O(E log E), all NumPy) and take, from each partner pair of
       orbits, the one with the smaller label.

    Every node copy contributes one edge to each half, hence every
    original node exactly ``degree/2`` — the split is balanced.
    """
    num_edges = left.shape[0]
    # Incidences: entry e is edge e at its left endpoint, entry
    # e + num_edges is edge e at its right endpoint (offset node ids).
    endpoints = np.concatenate([left, right + num_left])
    order = np.argsort(endpoints, kind="stable")
    # Degrees are even, so node boundaries in ``order`` fall on even
    # positions and consecutive pairs never straddle nodes.
    partner = np.empty(2 * num_edges, dtype=np.int64)
    partner[order[0::2]] = order[1::2]
    partner[order[1::2]] = order[0::2]

    sigma = partner[:num_edges]                      # other edge at left copy
    pi = partner[num_edges:] - num_edges             # other edge at right copy
    tau = sigma[pi]

    # Min-label propagation along tau-orbits by pointer doubling.
    labels = np.arange(num_edges, dtype=np.int64)
    hop = tau
    steps = max(1, int(num_edges).bit_length())
    for _ in range(steps):
        labels = np.minimum(labels, labels[hop])
        hop = hop[hop]

    # Partner orbit of an orbit: where pi sends any of its edges.
    partner_label = np.empty(num_edges, dtype=np.int64)
    partner_label[labels] = labels[pi]
    return labels < partner_label[labels]


def _euler_split_walk(
    left: np.ndarray, right: np.ndarray, num_left: int, num_right: int
) -> np.ndarray:
    """Core trail-walking split over raw edge arrays.

    Node ids are unified: left nodes keep their ids, right nodes are
    offset by ``num_left``.  For each node we build a CSR list of
    incident edge ids, then repeatedly walk closed trails from every
    node, marking edge direction as we go.
    """
    num_edges = left.shape[0]
    half = np.zeros(num_edges, dtype=bool)
    if num_edges == 0:
        return half

    num_nodes = num_left + num_right
    endpoints = np.concatenate([left, right + num_left])
    edge_ids = np.concatenate(
        [np.arange(num_edges, dtype=np.int64)] * 2
    )
    order = np.argsort(endpoints, kind="stable")
    incident = edge_ids[order]
    degree = np.bincount(endpoints, minlength=num_nodes)
    ptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(degree, out=ptr[1:])

    cursor = ptr[:-1].copy()        # next incidence slot to try, per node
    end = ptr[1:]
    used = np.zeros(num_edges, dtype=bool)

    # Localise for the hot loop.
    incident_l = incident.tolist()
    cursor_l = cursor.tolist()
    end_l = end.tolist()
    left_l = left.tolist()
    right_l = (right + num_left).tolist()
    used_l = used.tolist()
    half_l = half.tolist()

    for start in range(num_nodes):
        while True:
            # Advance the cursor of the start node past used edges.
            c = cursor_l[start]
            e = end_l[start]
            while c < e and used_l[incident_l[c]]:
                c += 1
            cursor_l[start] = c
            if c >= e:
                break  # start node exhausted
            node = start
            # Walk a closed trail; it must return to ``start`` because
            # every other node keeps even unused degree during the walk.
            while True:
                c = cursor_l[node]
                e = end_l[node]
                while c < e and used_l[incident_l[c]]:
                    c += 1
                cursor_l[node] = c
                if c >= e:
                    break  # trail closed (node == start here)
                edge = incident_l[c]
                cursor_l[node] = c + 1
                used_l[edge] = True
                if node == left_l[edge]:
                    # Traversed left -> right: first half.
                    half_l[edge] = True
                    node = right_l[edge]
                else:
                    node = left_l[edge]

    return np.asarray(half_l, dtype=bool)


def euler_split_coloring(graph: RegularBipartiteMultigraph) -> np.ndarray:
    """Colour a power-of-two-degree regular bipartite multigraph.

    Recursively Euler-splits until degree 1 (a perfect matching, one
    colour).  Colours are integers in ``[0, degree)``; edges in the
    ``True`` half of a split get the lower colour range.  Raises
    :class:`~repro.errors.ColoringError` when the degree is not a power
    of two (use :func:`repro.coloring.matching_coloring` instead).
    """
    with telemetry.span("coloring.euler", edges=graph.num_edges,
                        degree=graph.degree):
        if _fault_hook is not None:
            _fault_hook("euler", graph)
        if graph.num_edges == 0:
            return np.empty(0, dtype=np.int64)
        if not is_power_of_two(graph.degree):
            raise ColoringError(
                "Euler-split colouring requires a power-of-two degree, got "
                f"{graph.degree}; use the 'matching' backend for general "
                "degrees"
            )
        colors = np.zeros(graph.num_edges, dtype=np.int64)
        _color_recursive(
            graph.left,
            graph.right,
            graph.num_left,
            graph.num_right,
            graph.degree,
            np.arange(graph.num_edges, dtype=np.int64),
            colors,
            base=0,
        )
        telemetry.count("coloring.euler.calls")
        telemetry.count("coloring.edges_colored", graph.num_edges)
        return colors


def _color_recursive(
    left: np.ndarray,
    right: np.ndarray,
    num_left: int,
    num_right: int,
    degree: int,
    edge_ids: np.ndarray,
    colors: np.ndarray,
    base: int,
) -> None:
    """Assign colours ``base .. base + degree - 1`` to ``edge_ids``."""
    if degree == 1:
        colors[edge_ids] = base
        return
    half = _euler_split_arrays(left, right, num_left, num_right)
    for take, offset in ((half, 0), (~half, degree // 2)):
        _color_recursive(
            left[take],
            right[take],
            num_left,
            num_right,
            degree // 2,
            edge_ids[take],
            colors,
            base + offset,
        )
