"""Edge colouring by repeated perfect-matching extraction.

König's theorem is constructive through Hall's theorem: a ``D``-regular
bipartite multigraph always contains a perfect matching; remove it and
the remainder is ``(D-1)``-regular, so ``D`` rounds of matching yield a
proper ``D``-edge-colouring.  This works for *any* degree (the
Euler-split backend needs powers of two) at the cost of a matching
computation per colour.

Two matching engines are provided:

* :func:`scipy.sparse.csgraph.maximum_bipartite_matching` — the fast C
  path used by :func:`matching_coloring`;
* :func:`hopcroft_karp_matching` — a dependency-free pure-Python
  Hopcroft–Karp used by :func:`hopcroft_karp_coloring` and as an
  independent cross-check in the test suite.

Multiplicities are handled via *edge buckets*: parallel edges share a
``(u, v)`` pair; each extracted matching consumes one edge instance per
matched pair.
"""

from __future__ import annotations

from collections import deque

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import maximum_bipartite_matching

from repro import telemetry
from repro.coloring.multigraph import RegularBipartiteMultigraph
from repro.errors import ColoringError

_INF = float("inf")

#: Fault-injection hook (see :mod:`repro.resilience.faults`).  ``None``
#: in production; when set it is called as ``_fault_hook("matching",
#: graph)`` before each colouring and may raise.
_fault_hook = None


# ---------------------------------------------------------------------------
# Pure-Python Hopcroft-Karp
# ---------------------------------------------------------------------------


def hopcroft_karp_matching(
    adjacency: list[list[int]], num_right: int
) -> np.ndarray:
    """Maximum bipartite matching via Hopcroft–Karp.

    ``adjacency[u]`` lists the right-side neighbours of left node ``u``.
    Returns ``match[u]`` = matched right node or ``-1``.  Runs in
    ``O(E sqrt(V))``.
    """
    num_left = len(adjacency)
    match_left = [-1] * num_left
    match_right = [-1] * num_right
    dist = [0.0] * num_left

    def bfs() -> bool:
        queue: deque[int] = deque()
        for u in range(num_left):
            if match_left[u] == -1:
                dist[u] = 0.0
                queue.append(u)
            else:
                dist[u] = _INF
        found = False
        while queue:
            u = queue.popleft()
            for v in adjacency[u]:
                w = match_right[v]
                if w == -1:
                    found = True
                elif dist[w] == _INF:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        return found

    def dfs(u: int) -> bool:
        for v in adjacency[u]:
            w = match_right[v]
            if w == -1 or (dist[w] == dist[u] + 1 and dfs(w)):
                match_left[u] = v
                match_right[v] = u
                return True
        dist[u] = _INF
        return False

    while bfs():
        for u in range(num_left):
            if match_left[u] == -1:
                dfs(u)
    return np.asarray(match_left, dtype=np.int64)


# ---------------------------------------------------------------------------
# Colouring by repeated matching
# ---------------------------------------------------------------------------


def _coloring_by_matchings(
    graph: RegularBipartiteMultigraph, matcher
) -> np.ndarray:
    """Shared driver: extract ``degree`` perfect matchings.

    ``matcher(rows, cols, L, R)`` receives the currently-present
    ``(u, v)`` pairs and must return ``match[u]`` = matched ``v`` (or
    ``-1``) with every left node matched.
    """
    if _fault_hook is not None:
        _fault_hook("matching", graph)
    if graph.num_edges == 0:
        return np.empty(0, dtype=np.int64)
    if graph.num_left != graph.num_right:
        raise ColoringError(
            "perfect-matching colouring needs equal sides, got "
            f"{graph.num_left} != {graph.num_right}"
        )
    with telemetry.span("coloring.matching", edges=graph.num_edges,
                        degree=graph.degree):
        return _extract_matchings(graph, matcher)


def _extract_matchings(
    graph: RegularBipartiteMultigraph, matcher
) -> np.ndarray:
    order, starts, keys = graph.edge_buckets()
    remaining = np.diff(starts).astype(np.int64)  # multiplicity per bucket
    next_slot = starts[:-1].copy()
    rows_all = (keys // max(graph.num_right, 1)).astype(np.int64)
    cols_all = (keys % max(graph.num_right, 1)).astype(np.int64)
    colors = np.full(graph.num_edges, -1, dtype=np.int64)

    for color in range(graph.degree):
        present = remaining > 0
        rows = rows_all[present]
        cols = cols_all[present]
        match = matcher(rows, cols, graph.num_left, graph.num_right)
        if match.shape[0] != graph.num_left or np.any(match < 0):
            raise ColoringError(
                f"no perfect matching found at colour {color}; "
                "the multigraph is not regular"
            )
        # Locate the bucket of each matched pair and hand out one edge
        # instance from it.
        matched_keys = (
            np.arange(graph.num_left, dtype=np.int64)
            * np.int64(max(graph.num_right, 1))
            + match
        )
        bucket = np.searchsorted(keys, matched_keys)
        if np.any(bucket >= keys.shape[0]) or np.any(
            keys[np.minimum(bucket, keys.shape[0] - 1)] != matched_keys
        ):
            raise ColoringError("matching used a non-existent edge")
        if np.any(remaining[bucket] <= 0):
            raise ColoringError("matching reused an exhausted parallel edge")
        colors[order[next_slot[bucket]]] = color
        next_slot[bucket] += 1
        remaining[bucket] -= 1
        telemetry.count("coloring.matchings_extracted")

    if np.any(colors < 0):  # pragma: no cover - guarded by regularity
        raise ColoringError("some edges were never coloured")
    telemetry.count("coloring.matching.calls")
    telemetry.count("coloring.edges_colored", graph.num_edges)
    return colors


def _scipy_matcher(
    rows: np.ndarray, cols: np.ndarray, num_left: int, num_right: int
) -> np.ndarray:
    data = np.ones(rows.shape[0], dtype=np.int8)
    graph = csr_matrix((data, (rows, cols)), shape=(num_left, num_right))
    return maximum_bipartite_matching(graph, perm_type="column").astype(np.int64)


def _hk_matcher(
    rows: np.ndarray, cols: np.ndarray, num_left: int, num_right: int
) -> np.ndarray:
    adjacency: list[list[int]] = [[] for _ in range(num_left)]
    for u, v in zip(rows.tolist(), cols.tolist()):
        adjacency[u].append(v)
    return hopcroft_karp_matching(adjacency, num_right)


def matching_coloring(graph: RegularBipartiteMultigraph) -> np.ndarray:
    """König edge colouring via scipy's Hopcroft–Karp (any degree)."""
    return _coloring_by_matchings(graph, _scipy_matcher)


def hopcroft_karp_coloring(graph: RegularBipartiteMultigraph) -> np.ndarray:
    """König edge colouring via the pure-Python Hopcroft–Karp."""
    return _coloring_by_matchings(graph, _hk_matcher)
