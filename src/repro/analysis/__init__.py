"""Reporting helpers: text tables, summary statistics, ASCII figures.

The benchmark harness prints paper-style tables; these utilities keep
the formatting in one place so every bench reads the same way.
"""

from repro.analysis.charts import bar_chart, loglog_slope, scaling_chart
from repro.analysis.tables import format_table
from repro.analysis.stats import Summary, summarize
from repro.analysis.figures import (
    render_diagonal_arrangement,
    render_matrix,
    render_pipeline,
    render_routing_steps,
)

__all__ = [
    "Summary",
    "bar_chart",
    "format_table",
    "loglog_slope",
    "render_diagonal_arrangement",
    "render_matrix",
    "render_pipeline",
    "render_routing_steps",
    "scaling_chart",
    "summarize",
]
