"""ASCII charts for terminal benchmark reports.

The benches print paper-style tables; these helpers add quick visual
shape checks — horizontal bar charts and log-log trend lines — without
any plotting dependency (the environment is headless).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.errors import SizeError

_BAR = "#"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str | None = None,
) -> str:
    """Horizontal bar chart; bars scaled to the maximum value."""
    if len(labels) != len(values):
        raise SizeError("labels and values must have equal length")
    if any(v < 0 for v in values):
        raise SizeError("bar_chart values must be non-negative")
    lines: list[str] = []
    if title:
        lines.append(title)
    if not values:
        return "\n".join(lines + ["(no data)"])
    peak = max(values) or 1.0
    label_width = max(len(str(lab)) for lab in labels)
    for lab, val in zip(labels, values):
        bar = _BAR * max(1 if val > 0 else 0, round(val / peak * width))
        lines.append(f"{str(lab).rjust(label_width)} | {bar} {val:g}")
    return "\n".join(lines)


def loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of ``log y`` against ``log x``.

    The shape check for scaling tables: a slope of ~1 means linear in
    ``n``, ~2 quadratic, etc.  Requires positive data and at least two
    points.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise SizeError("need two or more matching points")
    if any(v <= 0 for v in xs) or any(v <= 0 for v in ys):
        raise SizeError("log-log slope needs positive values")
    lx = [math.log(v) for v in xs]
    ly = [math.log(v) for v in ys]
    n = len(lx)
    mx = sum(lx) / n
    my = sum(ly) / n
    cov = sum((a - mx) * (b - my) for a, b in zip(lx, ly))
    var = sum((a - mx) ** 2 for a in lx)
    if var == 0:
        raise SizeError("x values are all equal")
    return cov / var


def scaling_chart(
    sizes: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 40,
    title: str | None = None,
) -> str:
    """Per-size grouped bars plus the fitted log-log slope per series.

    Renders, for each size, one bar per series (scaled globally), and a
    footer line reporting each series' growth exponent.
    """
    lines: list[str] = []
    if title:
        lines.append(title)
    all_values = [v for vals in series.values() for v in vals]
    if not all_values:
        return "\n".join(lines + ["(no data)"])
    peak = max(all_values) or 1.0
    name_width = max(len(k) for k in series)
    for idx, size in enumerate(sizes):
        lines.append(f"n = {size:g}")
        for name, vals in series.items():
            val = vals[idx]
            bar = _BAR * max(1 if val > 0 else 0,
                             round(val / peak * width))
            lines.append(f"  {name.rjust(name_width)} | {bar} {val:g}")
    slopes = ", ".join(
        f"{name}: O(n^{loglog_slope(sizes, vals):.2f})"
        for name, vals in series.items()
        if len(set(vals)) > 1
    )
    if slopes:
        lines.append(f"growth: {slopes}")
    return "\n".join(lines)
