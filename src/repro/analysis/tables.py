"""Aligned text tables for benchmark output."""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table.

    Numbers are right-aligned, text left-aligned; floats are shown with
    4 significant decimals.  Returns the table as a single string.
    """
    def cell(value: object) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, text in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(text))
            else:
                widths.append(len(text))

    def align(text: str, i: int, original: object) -> str:
        if isinstance(original, (int, float)) and not isinstance(original, bool):
            return text.rjust(widths[i])
        return text.ljust(widths[i])

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths[: len(headers)]))
    for row, raw in zip(str_rows, rows):
        lines.append(
            "  ".join(align(t, i, raw[i]) for i, t in enumerate(row))
        )
    return "\n".join(lines)
