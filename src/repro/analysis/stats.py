"""Summary statistics for repeated-trial experiments (Table III style)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Minimum / average / maximum of a sample, as Table III reports."""

    minimum: float
    average: float
    maximum: float
    count: int

    def row(self) -> tuple[float, float, float]:
        return (self.minimum, self.average, self.maximum)


def summarize(values) -> Summary:
    """Summarise a sequence of numbers; empty input yields zeros."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return Summary(0.0, 0.0, 0.0, 0)
    return Summary(
        minimum=float(arr.min()),
        average=float(arr.mean()),
        maximum=float(arr.max()),
        count=int(arr.size),
    )
