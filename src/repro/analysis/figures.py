"""ASCII renderings of the paper's worked figures.

Used by the figure benchmarks and examples to print, next to the
measured numbers, the same pictures the paper draws:

* Figure 3 — the pipeline-injection timeline on the DMM/UMM;
* Figure 4 — the diagonal arrangement of a ``w x w`` tile;
* Figure 6 — the matrix after each routing step of the scheduled
  permutation.
"""

from __future__ import annotations

import numpy as np

from repro.machine.pipeline import CycleReport


def render_matrix(mat: np.ndarray, cell_width: int | None = None) -> str:
    """Render a small integer matrix as aligned text."""
    mat = np.asarray(mat)
    if cell_width is None:
        cell_width = max(
            (len(str(v)) for v in mat.reshape(-1).tolist()), default=1
        )
    return "\n".join(
        " ".join(str(v).rjust(cell_width) for v in row)
        for row in mat.tolist()
    )


def render_routing_steps(steps: list[tuple[str, np.ndarray]]) -> str:
    """Render the Figure-6 routing sequence: labelled matrices."""
    blocks = []
    for label, mat in steps:
        blocks.append(f"{label}:\n{render_matrix(np.asarray(mat))}")
    return "\n\n".join(blocks)


def render_diagonal_arrangement(width: int) -> str:
    """Figure 4: which tile element ``[i,j]`` sits at each shared slot.

    Slot ``i*w + (i+j) mod w`` holds ``[i, j]``; equivalently slot
    ``(i, k)`` holds ``[i, (k - i) mod w]``.
    """
    rows = []
    for i in range(width):
        cells = [f"[{i},{(k - i) % width}]" for k in range(width)]
        rows.append(" ".join(cells))
    return "\n".join(rows)


def render_pipeline(report: CycleReport) -> str:
    """Figure 3: one line per stage-group injection.

    Shows at which time unit each warp's stage group entered the MMU
    pipeline and the total completion time.
    """
    lines = [
        f"t={t:<4} warp W{w} round {r} ({size} request"
        f"{'s' if size != 1 else ''})"
        for t, w, r, size in report.injections
    ]
    lines.append(
        f"total: {report.total_stages} stages, completed at "
        f"t={report.total_time}"
    )
    return "\n".join(lines)
