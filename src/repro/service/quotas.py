"""Per-tenant quotas for the serving core.

Tenancy in the server is a *namespace*: every registration and request
carries a tenant id, registrations live under ``tenant/name`` keys, and
each tenant is metered against a :class:`TenantQuota`:

* ``rps`` — a token bucket (capacity ``burst``) limiting sustained
  requests per second;
* ``max_inflight`` — a bulkhead on queued + executing requests, so one
  tenant flooding the queue cannot starve the rest;
* ``max_plans`` — a bulkhead on *resident plans* (distinct registered
  permutations), bounding how much of the shared plan cache one tenant
  can pin.

All accounting happens under the server's admission lock, so the
bucket and gauges here are deliberately lock-free.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = ["TenantQuota", "TenantState", "UNLIMITED_QUOTA"]


@dataclass(frozen=True)
class TenantQuota:
    """Limits for one tenant; ``None`` fields are unlimited."""

    rps: float | None = None
    burst: int = 8
    max_inflight: int | None = None
    max_plans: int | None = None

    def __post_init__(self) -> None:
        if self.rps is not None and self.rps <= 0:
            raise ValidationError(f"rps must be > 0, got {self.rps}")
        if self.burst < 1:
            raise ValidationError(f"burst must be >= 1, got {self.burst}")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValidationError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.max_plans is not None and self.max_plans < 1:
            raise ValidationError(
                f"max_plans must be >= 1, got {self.max_plans}"
            )


#: The default: no limits (single-tenant deployments pay nothing).
UNLIMITED_QUOTA = TenantQuota()


class TenantState:
    """Live accounting for one tenant (guarded by the server lock)."""

    def __init__(
        self,
        quota: TenantQuota,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.quota = quota
        self._clock = clock
        self.tokens = float(quota.burst)
        self.last_refill = clock()
        self.inflight = 0
        self.plans: set[str] = set()
        self.admitted = 0
        self.rejected = 0

    def _refill(self) -> None:
        assert self.quota.rps is not None
        now = self._clock()
        self.tokens = min(
            float(self.quota.burst),
            self.tokens + (now - self.last_refill) * self.quota.rps,
        )
        self.last_refill = now

    def try_acquire(self) -> float:
        """Take one rate token.

        Returns 0.0 on success, else the seconds until the next token
        accrues (the retry-after hint).  Unlimited tenants always
        succeed.
        """
        if self.quota.rps is None:
            self.admitted += 1
            return 0.0
        self._refill()
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.admitted += 1
            return 0.0
        self.rejected += 1
        return (1.0 - self.tokens) / self.quota.rps

    def inflight_available(self) -> bool:
        return (
            self.quota.max_inflight is None
            or self.inflight < self.quota.max_inflight
        )

    def plan_slot_available(self, key: str) -> bool:
        return (
            self.quota.max_plans is None
            or key in self.plans
            or len(self.plans) < self.quota.max_plans
        )

    def snapshot(self) -> dict:
        return {
            "inflight": self.inflight,
            "resident_plans": len(self.plans),
            "admitted": self.admitted,
            "rejected": self.rejected,
            "rps": self.quota.rps,
            "max_inflight": self.quota.max_inflight,
            "max_plans": self.quota.max_plans,
        }
