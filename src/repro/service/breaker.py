"""Circuit breakers for the serving core.

A :class:`CircuitBreaker` protects one backend — the disk-cache tier
or one planning engine — with the classic three-state machine:

* **closed** — traffic flows; consecutive failures are counted and
  ``failure_threshold`` of them in a row trip the breaker;
* **open** — every :meth:`allow` is refused (callers skip the backend
  instead of queueing doomed work) until ``reset_timeout`` seconds
  have passed;
* **half-open** — after the timeout, up to ``half_open_probes`` probe
  calls are let through; if they all succeed the breaker closes, a
  single failure re-opens it (and restarts the timeout).

The breaker is thread-safe, uses an injectable monotonic clock so
tests can drive the timeout deterministically, and keeps a bounded
transition history so operators (and the chaos tests) can observe the
``closed -> open -> half-open -> closed`` walk after the fact.  Every
transition is mirrored to telemetry: a ``service.breaker.<name>.open``
style counter and a ``service.breaker.<name>.state`` gauge
(0 = closed, 1 = half-open, 2 = open).
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable

from repro import telemetry
from repro.errors import ValidationError

__all__ = ["CLOSED", "HALF_OPEN", "OPEN", "CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Gauge encoding of each state (closed lowest so dashboards can alert
#: on "anything above zero").
_STATE_GAUGE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}

#: How many transitions the history ring keeps.
_HISTORY_LIMIT = 64


class CircuitBreaker:
    """Trip after consecutive failures, probe after a cool-down.

    Parameters
    ----------
    name:
        Telemetry label, e.g. ``"engine.scheduled"`` or ``"disk"``.
    failure_threshold:
        Consecutive failures that trip the breaker open.
    reset_timeout:
        Seconds the breaker stays open before probing.
    half_open_probes:
        Successful probes required to close again.
    clock:
        Monotonic seconds; injectable for deterministic tests.
    """

    def __init__(
        self,
        name: str,
        failure_threshold: int = 3,
        reset_timeout: float = 0.5,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValidationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if half_open_probes < 1:
            raise ValidationError(
                f"half_open_probes must be >= 1, got {half_open_probes}"
            )
        if reset_timeout < 0:
            raise ValidationError(
                f"reset_timeout must be >= 0, got {reset_timeout}"
            )
        self.name = name
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self.half_open_probes = int(half_open_probes)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._probes_in_flight = 0
        self._probe_successes = 0
        self._opened_at: float | None = None
        self._transitions: list[tuple[float, str, str]] = []
        self.rejections = 0

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------

    def _transition(self, new_state: str) -> None:
        """Record a state change (caller holds the lock)."""
        old = self._state
        self._state = new_state
        self._transitions.append((self._clock(), old, new_state))
        del self._transitions[:-_HISTORY_LIMIT]
        telemetry.count(f"service.breaker.{self.name}.{new_state}")
        telemetry.gauge(
            f"service.breaker.{self.name}.state",
            _STATE_GAUGE[new_state],
        )

    def allow(self) -> bool:
        """May a call proceed right now?

        In the open state this flips to half-open once the reset
        timeout has elapsed and then admits up to ``half_open_probes``
        concurrent probes; every refusal is counted.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                assert self._opened_at is not None
                if (
                    self._clock() - self._opened_at
                    < self.reset_timeout
                ):
                    self.rejections += 1
                    telemetry.count(
                        f"service.breaker.{self.name}.rejected"
                    )
                    return False
                self._transition(HALF_OPEN)
                self._probes_in_flight = 0
                self._probe_successes = 0
            # Half-open: admit a bounded number of probes.
            if self._probes_in_flight < self.half_open_probes:
                self._probes_in_flight += 1
                return True
            self.rejections += 1
            telemetry.count(f"service.breaker.{self.name}.rejected")
            return False

    def record_success(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._probe_successes += 1
                if self._probe_successes >= self.half_open_probes:
                    self._transition(CLOSED)
                    self._consecutive_failures = 0
            else:
                self._consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                # A failed probe re-opens immediately.
                self._transition(OPEN)
                self._opened_at = self._clock()
                return
            self._consecutive_failures += 1
            if (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._transition(OPEN)
                self._opened_at = self._clock()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def reset(self) -> None:
        """Force-close (operator override)."""
        with self._lock:
            if self._state != CLOSED:
                self._transition(CLOSED)
            self._consecutive_failures = 0
            self._probes_in_flight = 0
            self._probe_successes = 0
            self._opened_at = None

    def retry_after(self) -> float:
        """Seconds until the breaker would next admit a probe."""
        with self._lock:
            if self._state != OPEN or self._opened_at is None:
                return 0.0
            remaining = (
                self._opened_at + self.reset_timeout - self._clock()
            )
            return max(0.0, remaining)

    def transitions(self) -> list[tuple[float, str, str]]:
        """Bounded ``(t, old, new)`` history, oldest first."""
        with self._lock:
            return list(self._transitions)

    def snapshot(self) -> dict:
        """One health()-ready dict of the breaker's current state."""
        with self._lock:
            return {
                "name": self.name,
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "reset_timeout": self.reset_timeout,
                "rejections": self.rejections,
                "transitions": len(self._transitions),
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CircuitBreaker({self.name!r}, {self.state})"
