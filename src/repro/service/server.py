"""The fault-tolerant concurrent serving core.

:class:`PermutationServer` turns the synchronous
:class:`~repro.service.PermutationService` into a server: callers
*submit* requests and worker threads serve them, with every production
concern the bare facade lacks:

* **bounded queue + admission control** — a fixed-capacity priority
  queue; when it is full an incoming request either displaces a
  strictly lower-priority queued one (which is *shed* — its caller
  gets :class:`~repro.errors.ServiceOverloadError` with a retry-after
  hint) or is rejected the same way.  The server never buffers
  unbounded work.
* **deadlines** — each request may carry a deadline, enforced at
  admission, at dequeue, and between retry attempts, so expired work
  never occupies a worker.
* **budget-aware retries + degradation** — transient planning faults
  (flaky colouring) are retried with the resilience layer's
  deterministic :func:`~repro.resilience.backoff_delay`, each sleep
  capped by the remaining deadline budget; when an engine keeps
  failing the request degrades along the familiar ladder
  ``registered engine -> padded -> d-designated`` instead of failing
  the caller.
* **per-tenant namespaces and quotas** — registrations live under
  ``tenant/name`` keys; each tenant is metered by a
  :class:`~repro.service.quotas.TenantQuota` (requests/sec token
  bucket, in-flight bulkhead, resident-plan bulkhead).
* **request coalescing** — concurrent single-payload requests for the
  same registration are drained from the queue together and served by
  one batched ``apply_batch`` pass over the shared plan.
* **circuit breakers** — one per engine and one around the disk-cache
  tier (:class:`_GuardedDiskCache`).  Consecutive failures trip a
  breaker open; while open the backend is skipped (fail-fast /
  plan-from-cold) until a half-open probe succeeds.  Breaker state is
  visible in :meth:`PermutationServer.health` and telemetry gauges.

Everything is observable: plain-integer counters via
:meth:`PermutationServer.stats`, breaker/queue/tenant snapshots via
:meth:`PermutationServer.health`, and ``server.*`` telemetry counters
and gauges when a tracer is active.  See ``docs/serving.md``.

::

    from repro.service import PermutationServer

    with PermutationServer(width=32, cache_dir="plans/",
                           workers=4) as server:
        server.register("shuffle", p)
        result = server.submit("shuffle", a, deadline_s=0.5)
        out = result.result()        # or .result(timeout=...)
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from collections.abc import Callable
from pathlib import Path
from typing import Any

import numpy as np

from repro import telemetry
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    QuotaExceededError,
    ReproError,
    ServiceOverloadError,
    ServingError,
    ValidationError,
)
from repro.resilience.engine import (
    DEFAULT_CHAIN,
    TRANSIENT_ERRORS,
    backoff_delay,
)
from repro.service import PermutationService
from repro.service.breaker import CLOSED, CircuitBreaker
from repro.service.quotas import (
    UNLIMITED_QUOTA,
    TenantQuota,
    TenantState,
)

__all__ = [
    "HIGH",
    "LOW",
    "NORMAL",
    "PermutationServer",
    "ServeResult",
]

#: Request priorities: lower value is more important.
HIGH, NORMAL, LOW = 0, 1, 2
_PRIORITIES = (HIGH, NORMAL, LOW)

#: Fallback retry-after hint when the server has no latency sample yet.
_DEFAULT_LATENCY_S = 0.005


class ServeResult:
    """A future for one submitted request.

    ``result()`` blocks until the request is served, then returns the
    permuted payload or raises the failure.  After completion the
    handle also carries how the request was served: ``engine`` (which
    ladder rung answered), ``attempts``, ``coalesced`` (whether it
    shared a batched apply), and ``wait_s`` / ``service_s`` timings.
    """

    def __init__(self, name: str, tenant: str, priority: int) -> None:
        self.name = name
        self.tenant = tenant
        self.priority = priority
        self.engine: str | None = None
        self.attempts = 0
        self.coalesced = False
        self.wait_s = 0.0
        self.service_s = 0.0
        self._event = threading.Event()
        self._value: np.ndarray | None = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> np.ndarray:
        if not self._event.wait(timeout):
            raise DeadlineExceededError(
                f"request {self.name!r} not finished within "
                f"{timeout} s"
            )
        if self._error is not None:
            raise self._error
        assert self._value is not None
        return self._value

    def exception(
        self, timeout: float | None = None
    ) -> BaseException | None:
        self._event.wait(timeout)
        return self._error

    def _resolve(self, value: np.ndarray) -> None:
        self._value = value
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


class _Request:
    """One queue entry (internal).

    ``rid`` is the process-unique request id (always assigned);
    ``ctx`` / ``qspan`` carry the request's
    :class:`~repro.telemetry.RequestContext` and detached queue-wait
    span, and stay ``None`` when no tracer is active — the disabled
    fast path allocates neither.  Out-of-core stream *stripes* are
    queue entries too: they carry their shared :class:`_StreamJob` in
    ``stream`` plus their ``phase``/``stripe`` assignment, and an
    empty payload.
    """

    __slots__ = ("key", "payload", "batch", "priority", "deadline",
                 "enqueued", "tenant", "result", "rid", "ctx", "qspan",
                 "stream", "phase", "stripe")

    def __init__(self, key: str, payload: np.ndarray, batch: bool,
                 priority: int, deadline: float | None,
                 enqueued: float, tenant: str, result: "ServeResult",
                 rid: int = 0, ctx: Any = None,
                 qspan: Any = None, stream: "Any | None" = None,
                 phase: str = "", stripe: int = -1) -> None:
        self.key = key
        self.payload = payload
        self.batch = batch
        self.priority = priority
        self.deadline = deadline
        self.enqueued = enqueued
        self.tenant = tenant
        self.result = result
        self.rid = rid
        self.ctx = ctx
        self.qspan = qspan
        self.stream = stream
        self.phase = phase
        self.stripe = stripe


class _StreamJob:
    """Shared state of one out-of-core stream request.

    ``submit_stream`` enqueues ``2 d`` stripe requests (``d`` pre
    stripes, then ``d`` post stripes) that all point here.  The first
    stripe a worker picks up compiles, shards and prepares the
    streaming job under the registered engine's circuit breaker;
    later stripes reuse it.  FIFO order within a priority bucket
    guarantees every pre stripe is running or done before any worker
    blocks on a post stripe, so the phase barrier inside
    :class:`~repro.exec.StreamingJob` cannot deadlock.  The caller's
    future resolves with the :class:`~repro.exec.StreamingStats` when
    the last stripe finishes, or fails once on the first error, shed,
    or server shutdown.
    """

    def __init__(
        self,
        key: str,
        path_in: Path,
        path_out: Path,
        d: int,
        max_resident_bytes: int | None,
        tmp_dir: Any,
        result: "ServeResult",
    ) -> None:
        self.key = key
        self.path_in = path_in
        self.path_out = path_out
        self.d = int(d)
        self.max_resident_bytes = max_resident_bytes
        self.tmp_dir = tmp_dir
        self.user_result = result
        self.total_stripes = 2 * self.d
        self.engine_name: str | None = None
        self.cancelled = False
        self._completed = 0
        self._lock = threading.Lock()
        self._prepared: Any = None

    def ensure_prepared(self, server: "PermutationServer") -> Any:
        """Compile + shard + open the streaming job (exactly once)."""
        with self._lock:
            if self.cancelled:
                raise ServingError(
                    f"stream for {self.key!r} was cancelled"
                )
            if self._prepared is not None:
                return self._prepared
            from repro.exec.streaming import (
                DEFAULT_RESIDENT_BYTES,
                StreamingExecutor,
            )

            registered = server.service._registration(self.key).engine
            breaker = server._engine_breaker(registered)
            if not breaker.allow():
                server._count("breaker.engine_skipped")
                raise CircuitOpenError(
                    f"breaker for engine {registered!r} is open; "
                    "retry the stream after its reset timeout"
                )
            try:
                compiled = server.service.compiled(self.key)
                sharded = compiled.shard(self.d)
                executor = StreamingExecutor(
                    max_resident_bytes=self.max_resident_bytes
                    or DEFAULT_RESIDENT_BYTES,
                    metrics=server.metrics,
                )
                self._prepared = executor.prepare(
                    sharded,
                    self.path_in,
                    self.path_out,
                    tmp_dir=self.tmp_dir,
                    concurrency=min(server.workers, self.d),
                )
            except ReproError:
                breaker.record_failure()
                raise
            breaker.record_success()
            self.engine_name = compiled.engine_name
            return self._prepared

    def stripe_finished(self) -> bool:
        """Count one finished stripe; True when it was the last."""
        with self._lock:
            self._completed += 1
            return self._completed == self.total_stripes

    def finalize(self) -> Any:
        return self._prepared.finalize()

    def fail(self, error: BaseException) -> None:
        """Fail the caller's future once and release any waiters."""
        with self._lock:
            if self.cancelled:
                return
            self.cancelled = True
            prepared = self._prepared
        self.user_result._fail(error)
        if prepared is not None:
            prepared.abort(str(error))

    def cancel(self, reason: str) -> None:
        self.fail(ServingError(reason))


class _GuardedDiskCache:
    """A :class:`~repro.planner.DiskPlanCache` behind a breaker.

    Transparent to the planner (everything not intercepted is
    delegated), but when the disk tier keeps serving corrupt entries
    or failing writes the breaker opens and the tier is bypassed —
    loads report a miss, stores are skipped — until a half-open probe
    succeeds.  A sick cache directory then costs re-planning, never
    repeated heal-on-every-load work.
    """

    def __init__(self, inner: Any, breaker: CircuitBreaker) -> None:
        self._inner = inner
        self.breaker = breaker

    def load(self, fingerprint: str) -> Any:
        if not self.breaker.allow():
            telemetry.count("server.disk.bypassed")
            return None
        corrupt_before = self._inner.corrupt
        plan = self._inner.load(fingerprint)
        if self._inner.corrupt > corrupt_before:
            self.breaker.record_failure()
        elif plan is not None:
            self.breaker.record_success()
        return plan

    def store(
        self, fingerprint: str, plan: Any, pipeline_signature: str
    ) -> Any:
        path = self._inner.path_for(fingerprint)
        if not self.breaker.allow():
            telemetry.count("server.disk.bypassed")
            return path
        try:
            path = self._inner.store(
                fingerprint, plan, pipeline_signature
            )
        except OSError:
            # A failed persist must not fail the request being served;
            # the plan lives on in the memory tier.
            self.breaker.record_failure()
            telemetry.count("server.disk.store_failed")
            return path
        self.breaker.record_success()
        return path

    def load_sealed(self, fingerprint: str) -> Any:
        if not self.breaker.allow():
            telemetry.count("server.disk.bypassed")
            return None
        corrupt_before = self._inner.sealed_corrupt
        sealed = self._inner.load_sealed(fingerprint)
        if self._inner.sealed_corrupt > corrupt_before:
            self.breaker.record_failure()
        elif sealed is not None:
            self.breaker.record_success()
        return sealed

    def store_sealed(self, fingerprint: str, sealed: Any) -> Any:
        path = self._inner.sealed_path_for(fingerprint)
        if not self.breaker.allow():
            telemetry.count("server.disk.bypassed")
            return path
        try:
            path = self._inner.store_sealed(fingerprint, sealed)
        except OSError:
            # Same contract as ``store``: a failed sidecar persist
            # never fails the request; the sealed form stays resident.
            self.breaker.record_failure()
            telemetry.count("server.disk.store_failed")
            return path
        self.breaker.record_success()
        return path

    def __getattr__(self, attr: str) -> Any:
        return getattr(self._inner, attr)


class PermutationServer:
    """Concurrent, fault-tolerant front door over a service.

    Parameters
    ----------
    service:
        The :class:`~repro.service.PermutationService` to serve from
        (one is built from ``width`` / ``cache_dir`` when omitted).
    workers:
        Worker threads draining the queue.
    queue_capacity:
        Bound on queued requests; beyond it admission control sheds or
        rejects.
    default_deadline_s:
        Deadline applied to requests that do not carry their own
        (``None``: no deadline).
    max_attempts / backoff_base:
        Per-engine retry budget for transient faults and the base of
        the deterministic backoff schedule.
    breaker_threshold / breaker_reset_s / half_open_probes:
        Circuit-breaker tuning, shared by the per-engine and disk
        breakers.
    coalesce / max_coalesce:
        Batch concurrent same-registration requests into one
        ``apply_batch`` (up to ``max_coalesce`` payloads per pass).
    quotas:
        ``{tenant: TenantQuota}``; tenants not listed get
        ``default_quota`` (unlimited unless specified).
    self_check:
        Verify every served output against the definitional scatter
        before delivering it (one extra O(n) pass per request).
    metrics:
        A :class:`~repro.telemetry.MetricsRegistry` to record latency
        histograms and labeled counters into (one is created when
        omitted); shared with the service and planner so one registry
        exposes the whole stack.
    slo:
        The :class:`~repro.telemetry.SLO` objectives the built-in
        :class:`~repro.telemetry.SLOMonitor` enforces (defaults are
        permissive: 99 % availability, 250 ms p99).
    recorder / postmortem_dir:
        The :class:`~repro.telemetry.FlightRecorder` capturing recent
        request events (one is created when omitted, dumping bundles
        to ``postmortem_dir`` if given).  The server dumps on SLO
        breach, shed bursts, and unexpected (non-repro) errors.
    metrics_port:
        When not ``None``, :meth:`start` additionally serves
        ``GET /metrics`` (Prometheus text) and ``GET /health`` on
        ``127.0.0.1:<metrics_port>`` (``0`` picks an ephemeral port,
        see ``server.http.port``).
    clock / sleep:
        Injectable monotonic clock and sleeper for deterministic
        tests.
    """

    def __init__(
        self,
        service: PermutationService | None = None,
        *,
        width: int = 32,
        cache_dir: Any = None,
        workers: int = 2,
        queue_capacity: int = 64,
        default_deadline_s: float | None = None,
        max_attempts: int = 3,
        backoff_base: float = 0.01,
        breaker_threshold: int = 3,
        breaker_reset_s: float = 0.25,
        half_open_probes: int = 1,
        coalesce: bool = True,
        max_coalesce: int = 16,
        quotas: dict[str, TenantQuota] | None = None,
        default_quota: TenantQuota = UNLIMITED_QUOTA,
        self_check: bool = False,
        metrics: Any = None,
        slo: Any = None,
        recorder: Any = None,
        postmortem_dir: Any = None,
        metrics_port: int | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if workers < 1:
            raise ValidationError(f"workers must be >= 1, got {workers}")
        if queue_capacity < 1:
            raise ValidationError(
                f"queue_capacity must be >= 1, got {queue_capacity}"
            )
        if max_attempts < 1:
            raise ValidationError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        if max_coalesce < 1:
            raise ValidationError(
                f"max_coalesce must be >= 1, got {max_coalesce}"
            )
        self.service = service or PermutationService(
            width=width, cache_dir=cache_dir
        )
        self.workers = int(workers)
        self.queue_capacity = int(queue_capacity)
        self.default_deadline_s = default_deadline_s
        self.max_attempts = int(max_attempts)
        self.backoff_base = float(backoff_base)
        self.coalesce = bool(coalesce)
        self.max_coalesce = int(max_coalesce)
        self.self_check = bool(self_check)
        self._breaker_threshold = int(breaker_threshold)
        self._breaker_reset_s = float(breaker_reset_s)
        self._half_open_probes = int(half_open_probes)
        self._clock = clock
        self._sleep = sleep
        self._quotas = dict(quotas or {})
        self._default_quota = default_quota
        self._tenants: dict[str, TenantState] = {}
        self._buckets: dict[int, deque[_Request]] = {
            prio: deque() for prio in _PRIORITIES
        }
        self._size = 0
        self._cond = threading.Condition()
        self._stats_lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._latency_ema = _DEFAULT_LATENCY_S
        self._stopping = False
        self._started = False
        self._threads: list[threading.Thread] = []
        self._engine_breakers: dict[str, CircuitBreaker] = {}
        self.disk_breaker: CircuitBreaker | None = None
        #: Cross-request observability: labeled instruments, rolling
        #: SLO compliance, and the failure flight recorder.
        self.metrics = metrics or telemetry.MetricsRegistry()
        self.slo_monitor = telemetry.SLOMonitor(
            slo or telemetry.SLO(), clock=clock
        )
        self.recorder = recorder or telemetry.FlightRecorder(
            dump_dir=postmortem_dir, clock=clock
        )
        self.recorder.add_provider("health", self.health)
        self.recorder.add_provider("slo", self.slo_monitor.status)
        self.recorder.add_provider(
            "active_requests", self._active_requests
        )
        self._metrics_port = metrics_port
        self.http = None
        self._rid = itertools.count(1)
        # Shed timestamps for burst detection: a full window inside
        # one second triggers a flight-recorder dump.
        self._recent_sheds: deque[float] = deque(maxlen=8)
        # In-flight requests by rid (admitted, not yet resolved) —
        # snapshotted into post-mortem bundles.
        self._inflight_reqs: dict[int, dict] = {}
        # One registry for the whole stack: server request metrics,
        # service/executor apply metrics, planner tier latencies.
        if self.service.metrics is None:
            self.service.metrics = self.metrics
        planner = self.service.planner
        if planner.metrics is None:
            planner.metrics = self.metrics
        if planner.disk is not None and not isinstance(
            planner.disk, _GuardedDiskCache
        ):
            self.disk_breaker = CircuitBreaker(
                "disk",
                failure_threshold=self._breaker_threshold,
                reset_timeout=self._breaker_reset_s,
                half_open_probes=self._half_open_probes,
                clock=clock,
            )
            planner.disk = _GuardedDiskCache(
                planner.disk, self.disk_breaker
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "PermutationServer":
        """Spawn the worker threads (idempotent)."""
        with self._cond:
            if self._started:
                return self
            if self._stopping:
                raise ServingError("server is closed")
            self._started = True
            for i in range(self.workers):
                t = threading.Thread(
                    target=self._worker,
                    name=f"permserve-worker-{i}",
                    daemon=True,
                )
                self._threads.append(t)
                t.start()
        if self._metrics_port is not None and self.http is None:
            self.http = telemetry.MetricsHTTPServer(
                self.metrics_text,
                health_fn=self.health,
                port=self._metrics_port,
            ).start()
        return self

    def close(self, drain: bool = True) -> None:
        """Stop accepting requests and shut the workers down.

        With ``drain=True`` (default) queued requests are served
        first; otherwise they fail with
        :class:`~repro.errors.ServingError`.
        """
        dropped: list[_Request] = []
        with self._cond:
            self._stopping = True
            if not drain:
                for bucket in self._buckets.values():
                    while bucket:
                        req = bucket.popleft()
                        self._size -= 1
                        self._tenant(req.tenant).inflight -= 1
                        req.result._fail(
                            ServingError("server closed before the "
                                         "request was served")
                        )
                        dropped.append(req)
            self._cond.notify_all()
        for req in dropped:
            # Outside the queue lock: finishing a request can trigger
            # a flight-recorder dump whose providers re-take it.
            if req.stream is not None:
                req.stream.cancel(
                    "server closed before the stream was served"
                )
            if req.qspan is not None:
                telemetry.end_span(req.qspan, outcome="dropped")
            self._finish_request(req, "dropped", ok=False)
        for t in self._threads:
            t.join(timeout=30.0)
        self._threads.clear()
        if self.http is not None:
            self.http.close()
            self.http = None

    def __enter__(self) -> "PermutationServer":
        return self.start()

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Registration (tenant namespaces)
    # ------------------------------------------------------------------

    @staticmethod
    def _key(tenant: str, name: str) -> str:
        return f"{tenant}/{name}"

    def _tenant(self, tenant: str) -> TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            quota = self._quotas.get(tenant, self._default_quota)
            state = TenantState(quota, clock=self._clock)
            self._tenants[tenant] = state
        return state

    def register(
        self,
        name: str,
        p: np.ndarray,
        engine: str | None = None,
        tenant: str = "default",
        overwrite: bool = False,
    ) -> str:
        """Register ``p`` in the tenant's namespace; returns the plan
        fingerprint.  Enforces the tenant's resident-plan bulkhead."""
        key = self._key(tenant, name)
        with self._cond:
            state = self._tenant(tenant)
            if not state.plan_slot_available(key):
                self._count("rejected.plan_quota")
                raise QuotaExceededError(
                    f"tenant {tenant!r} is at its resident-plan "
                    f"quota ({state.quota.max_plans}); unregister a "
                    "permutation first"
                )
        fp = self.service.register(
            key, p, engine=engine, overwrite=overwrite
        )
        with self._cond:
            self._tenant(tenant).plans.add(key)
        return fp

    def warm(self, tenant: str | None = None) -> int:
        """Compile every registration (of one tenant, or all)."""
        names = self.service.names()
        if tenant is not None:
            prefix = f"{tenant}/"
            names = [n for n in names if n.startswith(prefix)]
        return self.service.warm(names)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        with self._stats_lock:
            self._counters[name] = self._counters.get(name, 0) + n
        telemetry.count(f"server.{name}", n)
        self.metrics.counter("server_events_total", event=name).inc(n)

    def _active_requests(self) -> list[dict]:
        """Flight-recorder snapshot of every in-flight request."""
        now = self._clock()
        with self._stats_lock:
            rows = [dict(info) for info in self._inflight_reqs.values()]
        for row in rows:
            row["age_s"] = now - row.pop("enqueued")
        return sorted(rows, key=lambda r: r["rid"])

    def _track(self, request: _Request) -> None:
        info = {
            "rid": request.rid,
            "key": request.key,
            "tenant": request.tenant,
            "priority": request.priority,
            "enqueued": request.enqueued,
        }
        span_id = getattr(request.ctx.span, "span_id", None) \
            if request.ctx is not None else None
        if span_id is not None:
            info["span_id"] = span_id
        with self._stats_lock:
            self._inflight_reqs[request.rid] = info

    def _finish_request(
        self,
        request: _Request,
        outcome: str,
        ok: bool,
        engine: str | None = None,
    ) -> None:
        """Observability epilogue for one resolved request.

        Records the end-to-end latency histogram (labeled by family,
        tenant, engine and outcome), feeds the SLO monitor (dumping a
        post-mortem on the breach transition), logs a flight-recorder
        event, ends the request's root span, and drops it from the
        in-flight table.  Must be called exactly once per admitted
        request, after its future resolves.
        """
        e2e = self._clock() - request.enqueued
        family = request.key.rsplit("/", 1)[-1]
        self.metrics.histogram(
            "server_e2e_seconds",
            family=family,
            tenant=request.tenant,
            engine=engine or "none",
            outcome=outcome,
        ).observe(e2e)
        self.recorder.record(
            "finish", rid=request.rid, outcome=outcome,
            engine=engine, e2e_s=round(e2e, 6),
        )
        if request.ctx is not None:
            telemetry.end_span(
                request.ctx.span, outcome=outcome,
                engine=engine, e2e_s=e2e,
            )
        with self._stats_lock:
            self._inflight_reqs.pop(request.rid, None)
        if self.slo_monitor.record(ok, e2e):
            self.recorder.dump(
                "slo_breach", rid=request.rid, outcome=outcome
            )

    def metrics_text(self) -> str:
        """The Prometheus exposition for ``/metrics`` (scrape-time
        gauges — queue depth, SLO compliance — are refreshed here)."""
        with self._cond:
            depth = self._size
        gauges = self.metrics.gauge
        gauges("server_queue_depth").set(depth)
        gauges("server_queue_capacity").set(self.queue_capacity)
        status = self.slo_monitor.status()
        gauges("slo_availability").set(status["availability"])
        gauges("slo_latency_p99_seconds").set(status["p99_s"])
        gauges("slo_burn_rate").set(min(status["burn_rate"], 1e9))
        gauges("slo_breached").set(1.0 if status["breached"] else 0.0)
        gauges("recorder_events_total").set(self.recorder.recorded)
        gauges("recorder_dumps_total").set(self.recorder.dumps)
        planner = self.service.planner
        pstats = planner.stats()
        gauges("planner_memory_bytes").set(
            pstats.get("memory_bytes", 0)
        )
        gauges("planner_sealed_plans_total").set(
            pstats.get("sealed_plans", 0)
        )
        if "disk_bytes" in pstats:
            gauges("planner_disk_bytes").set(pstats["disk_bytes"])
            gauges("planner_disk_evictions_total").set(
                pstats.get("disk_evictions", 0)
            )
            gauges("planner_sealed_hits_total").set(
                pstats.get("sealed_hits", 0)
            )
        return self.metrics.prometheus_text()

    def _retry_after(self) -> float:
        ema = self._latency_ema or _DEFAULT_LATENCY_S
        return ema * (1 + self._size / max(1, self.workers))

    def _shed_for(self, priority: int) -> _Request | None:
        """The queued request to displace for an incoming ``priority``
        request: the newest entry of the lowest-priority non-empty
        bucket, and only if strictly less important."""
        for prio in reversed(_PRIORITIES):
            if prio <= priority:
                return None
            if self._buckets[prio]:
                return self._buckets[prio].pop()
        return None

    def submit(
        self,
        name: str,
        a: np.ndarray,
        *,
        tenant: str = "default",
        priority: int = NORMAL,
        deadline_s: float | None = None,
        batch: bool = False,
    ) -> ServeResult:
        """Enqueue one request; returns a :class:`ServeResult` future.

        Raises synchronously when the request cannot be admitted:
        :class:`~repro.errors.QuotaExceededError` (tenant over rate or
        bulkhead), :class:`~repro.errors.ServiceOverloadError` (queue
        full, nothing shed-able) — both carry ``retry_after`` — or
        :class:`~repro.errors.ValidationError` (unknown name, payload
        shape mismatch).
        """
        if priority not in _PRIORITIES:
            raise ValidationError(
                f"priority must be one of {_PRIORITIES}, got {priority}"
            )
        key = self._key(tenant, name)
        reg = self.service._registration(key)
        payload = np.asarray(a)
        n = int(reg.p.shape[0])
        if batch:
            if payload.ndim != 2 or payload.shape[1] != n:
                raise ValidationError(
                    f"batch payload must have shape (k, {n}), got "
                    f"{payload.shape}"
                )
        elif payload.shape != (n,):
            raise ValidationError(
                f"payload must have shape ({n},), got {payload.shape}"
            )
        self.start()
        now = self._clock()
        limit = deadline_s if deadline_s is not None \
            else self.default_deadline_s
        deadline = now + limit if limit is not None else None
        result = ServeResult(name=name, tenant=tenant, priority=priority)
        rid = next(self._rid)
        ctx = qspan = None
        if telemetry.get_tracer() is not None:
            # Only an active tracer pays for a context + root span;
            # the disabled fast path allocates neither.
            ctx = telemetry.RequestContext(
                rid, tenant=tenant, name=name, priority=priority,
                deadline=deadline,
            )
            ctx.span = telemetry.begin_span(
                "serve.request", request_id=rid, tenant=tenant,
                registration=name, priority=priority,
            )
            qspan = telemetry.begin_span(
                "serve.queue_wait", parent=ctx.span, request_id=rid
            )
        request = _Request(
            key=key, payload=payload, batch=batch, priority=priority,
            deadline=deadline, enqueued=now, tenant=tenant,
            result=result, rid=rid, ctx=ctx, qspan=qspan,
        )
        victim: _Request | None = None
        shed_burst = False
        try:
            with self._cond:
                if self._stopping:
                    raise ServingError("server is closed")
                state = self._tenant(tenant)
                wait = state.try_acquire()
                if wait > 0:
                    self._count("rejected.rate")
                    raise QuotaExceededError(
                        f"tenant {tenant!r} exceeded "
                        f"{state.quota.rps} requests/sec",
                        retry_after=wait,
                    )
                if not state.inflight_available():
                    self._count("rejected.bulkhead")
                    raise QuotaExceededError(
                        f"tenant {tenant!r} is at its in-flight "
                        f"bulkhead ({state.quota.max_inflight})",
                        retry_after=self._retry_after(),
                    )
                if self._size >= self.queue_capacity:
                    victim = self._shed_for(priority)
                    if victim is None:
                        self._count("rejected.queue_full")
                        raise ServiceOverloadError(
                            f"request queue is full "
                            f"({self.queue_capacity} deep)",
                            retry_after=self._retry_after(),
                        )
                    self._size -= 1
                    self._tenant(victim.tenant).inflight -= 1
                    self._count("shed")
                    self._recent_sheds.append(self._clock())
                    shed_burst = (
                        len(self._recent_sheds)
                        == self._recent_sheds.maxlen
                        and (self._recent_sheds[-1]
                             - self._recent_sheds[0]) <= 1.0
                    )
                    victim.result._fail(ServiceOverloadError(
                        "shed from the queue by a higher-priority "
                        "request",
                        retry_after=self._retry_after(),
                    ))
                self._buckets[priority].append(request)
                self._size += 1
                state.inflight += 1
                self._count("accepted")
                telemetry.gauge("server.queue.depth", self._size)
                self._cond.notify()
        except (QuotaExceededError, ServiceOverloadError,
                ServingError) as exc:
            self.recorder.record(
                "reject", rid=rid, key=key, tenant=tenant,
                reason=type(exc).__name__,
            )
            if ctx is not None:
                telemetry.end_span(qspan, outcome="rejected")
                telemetry.end_span(
                    ctx.span, outcome="rejected",
                    reason=type(exc).__name__,
                )
            raise
        self._track(request)
        self.recorder.record(
            "admit", rid=rid, key=key, tenant=tenant,
            priority=priority,
        )
        if victim is not None:
            if victim.stream is not None:
                # Shedding one stripe strands the rest of its plan:
                # fail the whole stream (its queued siblings then
                # drain as no-ops).
                victim.stream.cancel(
                    "a stripe of this stream was shed from the queue "
                    "by a higher-priority request"
                )
            if victim.qspan is not None:
                telemetry.end_span(victim.qspan, outcome="shed")
            self.recorder.record(
                "shed", rid=victim.rid, by=rid, key=victim.key
            )
            self._finish_request(victim, "shed", ok=False)
            if shed_burst:
                self.recorder.dump(
                    "shed_burst",
                    window_s=round(self._recent_sheds[-1]
                                   - self._recent_sheds[0], 3),
                    sheds=len(self._recent_sheds),
                )
        return result

    def submit_stream(
        self,
        name: str,
        path_in: str | Path,
        path_out: str | Path,
        *,
        d: int = 8,
        tenant: str = "default",
        priority: int = NORMAL,
        deadline_s: float | None = None,
        max_resident_bytes: int | None = None,
        tmp_dir: str | Path | None = None,
    ) -> ServeResult:
        """Enqueue an out-of-core stream as ``2 d`` stripe tasks.

        The on-disk ``.npy`` payload at ``path_in`` is permuted into
        ``path_out`` through the registration's proven ``d``-stripe
        sharding, under the streaming executor's resident-bytes
        budget.  The stream is admitted once (one rate token, one
        bulkhead check) but occupies ``2 d`` queue slots and in-flight
        counts: ``d`` pre stripes followed by ``d`` post stripes, all
        in the same priority bucket, so any number of workers can pull
        stripes concurrently — FIFO order within the bucket guarantees
        every pre stripe is running or done before a worker blocks on
        a post stripe, which makes the phase barrier deadlock-free.

        The returned future resolves with the
        :class:`~repro.exec.StreamingStats` when the last stripe
        finishes.  Any stripe failure, shed, or server shutdown fails
        the whole stream once and aborts the in-flight stripes.
        """
        if priority not in _PRIORITIES:
            raise ValidationError(
                f"priority must be one of {_PRIORITIES}, got {priority}"
            )
        if d < 1:
            raise ValidationError(
                f"shard count d must be >= 1, got {d}"
            )
        key = self._key(tenant, name)
        self.service._registration(key)
        src = Path(path_in)
        if not src.exists():
            raise ValidationError(
                f"input payload {str(src)!r} does not exist"
            )
        self.start()
        now = self._clock()
        limit = deadline_s if deadline_s is not None \
            else self.default_deadline_s
        deadline = now + limit if limit is not None else None
        result = ServeResult(name=name, tenant=tenant,
                             priority=priority)
        job = _StreamJob(
            key=key, path_in=src, path_out=Path(path_out), d=d,
            max_resident_bytes=max_resident_bytes, tmp_dir=tmp_dir,
            result=result,
        )
        requests = [
            _Request(
                key=key, payload=np.empty(0), batch=False,
                priority=priority, deadline=deadline, enqueued=now,
                tenant=tenant,
                result=ServeResult(name=name, tenant=tenant,
                                   priority=priority),
                rid=next(self._rid), stream=job, phase=phase,
                stripe=k,
            )
            for phase in ("pre", "post")
            for k in range(d)
        ]
        try:
            with self._cond:
                if self._stopping:
                    raise ServingError("server is closed")
                state = self._tenant(tenant)
                wait = state.try_acquire()
                if wait > 0:
                    self._count("rejected.rate")
                    raise QuotaExceededError(
                        f"tenant {tenant!r} exceeded "
                        f"{state.quota.rps} requests/sec",
                        retry_after=wait,
                    )
                if not state.inflight_available():
                    self._count("rejected.bulkhead")
                    raise QuotaExceededError(
                        f"tenant {tenant!r} is at its in-flight "
                        f"bulkhead ({state.quota.max_inflight})",
                        retry_after=self._retry_after(),
                    )
                if self._size + len(requests) > self.queue_capacity:
                    # A stream is all-or-nothing: admitting a partial
                    # stripe set (or shedding on its behalf) could
                    # strand the phase barrier, so it simply waits for
                    # room instead of displacing queued work.
                    self._count("rejected.queue_full")
                    raise ServiceOverloadError(
                        f"queue cannot hold {len(requests)} stripe "
                        f"tasks ({self.queue_capacity - self._size} "
                        "slots free)",
                        retry_after=self._retry_after(),
                    )
                self._buckets[priority].extend(requests)
                self._size += len(requests)
                state.inflight += len(requests)
                self._count("accepted")
                self._count("stream.accepted")
                telemetry.gauge("server.queue.depth", self._size)
                self._cond.notify_all()
        except (QuotaExceededError, ServiceOverloadError,
                ServingError) as exc:
            self.recorder.record(
                "reject", rid=requests[0].rid, key=key, tenant=tenant,
                reason=type(exc).__name__,
            )
            raise
        for req in requests:
            self._track(req)
        self.recorder.record(
            "admit_stream", rid=requests[0].rid, key=key,
            tenant=tenant, d=d, stripes=len(requests),
        )
        return result

    def apply(self, name: str, a: np.ndarray, **kwargs) -> np.ndarray:
        """Synchronous convenience: ``submit(...).result()``."""
        return self.submit(name, a, **kwargs).result()

    def apply_batch(
        self, name: str, batch: np.ndarray, **kwargs
    ) -> np.ndarray:
        """Synchronous convenience for a stacked ``(k, n)`` payload."""
        return self.submit(name, batch, batch=True, **kwargs).result()

    def apply_stream(
        self, name: str, path_in: str | Path, path_out: str | Path,
        **kwargs: Any,
    ) -> Any:
        """Synchronous convenience: ``submit_stream(...).result()``."""
        return self.submit_stream(name, path_in, path_out,
                                  **kwargs).result()

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------

    def _worker(self) -> None:
        while True:
            with self._cond:
                while self._size == 0 and not self._stopping:
                    self._cond.wait()
                if self._size == 0 and self._stopping:
                    return
                group = self._take_group()
                telemetry.gauge("server.queue.depth", self._size)
            try:
                self._dispatch(group)
            finally:
                with self._cond:
                    for req in group:
                        self._tenant(req.tenant).inflight -= 1

    def _take_group(self) -> list[_Request]:
        """Pop the most important request and (when coalescing) every
        compatible same-registration single request behind it.  Caller
        holds the lock."""
        first: _Request | None = None
        for prio in _PRIORITIES:
            if self._buckets[prio]:
                first = self._buckets[prio].popleft()
                break
        assert first is not None
        self._size -= 1
        group = [first]
        if not self.coalesce or first.batch or first.stream is not None:
            # Stream stripes never coalesce: each is one unit of an
            # ordered plan, not an independent same-shape payload.
            return group
        shape, dtype = first.payload.shape, first.payload.dtype
        for prio in _PRIORITIES:
            bucket = self._buckets[prio]
            keep: deque[_Request] = deque()
            while bucket and len(group) < self.max_coalesce:
                req = bucket.popleft()
                if (
                    not req.batch
                    and req.stream is None
                    and req.key == first.key
                    and req.payload.shape == shape
                    and req.payload.dtype == dtype
                ):
                    group.append(req)
                    self._size -= 1
                else:
                    keep.append(req)
            keep.extend(bucket)
            bucket.clear()
            bucket.extend(keep)
            if len(group) >= self.max_coalesce:
                break
        return group

    def _dispatch(self, group: list[_Request]) -> None:
        """Serve one dequeued group end to end."""
        now = self._clock()
        live: list[_Request] = []
        for req in group:
            wait = now - req.enqueued
            if req.qspan is not None:
                telemetry.end_span(req.qspan, wait_s=wait)
            self.metrics.histogram(
                "server_queue_wait_seconds",
                priority=str(req.priority),
            ).observe(wait)
            if req.deadline is not None and now >= req.deadline:
                self._count("deadline_exceeded")
                error = DeadlineExceededError(
                    f"deadline expired after "
                    f"{wait:.3f} s in the queue"
                )
                req.result._fail(error)
                if req.stream is not None:
                    # One expired stripe fails the whole stream.
                    req.stream.fail(error)
                self._finish_request(
                    req, "deadline_exceeded", ok=False
                )
            else:
                req.result.wait_s = wait
                live.append(req)
        if not live:
            return
        # Adopt the group leader's request context on this worker
        # thread: spans opened while serving nest under its root, so
        # the whole serve renders as one connected tree.  Riders keep
        # their own root spans and are linked by attribute.
        leader = live[0]
        t0 = self._clock()
        serve = (
            self._serve_stream if leader.stream is not None
            else self._serve
        )
        try:
            if leader.ctx is not None:
                with telemetry.request_scope(leader.ctx):
                    serve(live)
            else:
                serve(live)
        except Exception as exc:
            # Catch everything: an escaped exception would kill the
            # worker thread and leave every queued future unresolved.
            self._count("failed")
            engine = leader.result.engine
            for req in live:
                req.result._fail(exc)
                self._finish_request(
                    req, type(exc).__name__, ok=False, engine=engine
                )
            if not isinstance(exc, ReproError):
                # Anything outside the library's failure taxonomy is
                # a bug, not an operational condition: freeze the ring.
                self.recorder.dump(
                    "unexpected_error", rid=leader.rid,
                    error=f"{type(exc).__name__}: {exc}",
                )
            return
        elapsed = self._clock() - t0
        with self._stats_lock:
            self._latency_ema = (
                0.9 * self._latency_ema + 0.1 * elapsed
            )
        engine = leader.result.engine
        for req in live:
            req.result.service_s = elapsed
            self._finish_request(req, "ok", ok=True, engine=engine)
        self._count("served", len(live))

    # ------------------------------------------------------------------
    # Execution: breakers, retries, degradation ladder
    # ------------------------------------------------------------------

    def _engine_breaker(self, engine: str) -> CircuitBreaker:
        breaker = self._engine_breakers.get(engine)
        if breaker is None:
            with self._stats_lock:
                breaker = self._engine_breakers.get(engine)
                if breaker is None:
                    breaker = CircuitBreaker(
                        f"engine.{engine}",
                        failure_threshold=self._breaker_threshold,
                        reset_timeout=self._breaker_reset_s,
                        half_open_probes=self._half_open_probes,
                        clock=self._clock,
                    )
                    self._engine_breakers[engine] = breaker
        return breaker

    def _ladder(self, registered: str) -> list[str]:
        return [registered] + [
            e for e in DEFAULT_CHAIN if e != registered
        ]

    def _serve(self, group: list[_Request]) -> None:
        """Serve ``group`` (same registration), resolving every future.

        Walks the engine ladder under the breakers; transient faults
        retry with deadline-capped backoff, persistent faults hop to
        the next engine.  The group degrades and succeeds — or fails —
        together.
        """
        key = group[0].key
        registered = self.service._registration(key).engine
        deadline = min(
            (r.deadline for r in group if r.deadline is not None),
            default=None,
        )
        attempts_total = 0
        all_open = True
        for engine in self._ladder(registered):
            breaker = self._engine_breaker(engine)
            if not breaker.allow():
                self._count("breaker.engine_skipped")
                self.recorder.record(
                    "breaker_skip", rid=group[0].rid, engine=engine
                )
                continue
            all_open = False
            for attempt in range(1, self.max_attempts + 1):
                if deadline is not None and \
                        self._clock() >= deadline:
                    self._count("deadline_exceeded", len(group))
                    raise DeadlineExceededError(
                        "deadline expired while retrying "
                        f"(engine {engine!r}, attempt {attempt})"
                    )
                if attempts_total == 0:
                    t_first = self._clock()
                    for req in group:
                        self.metrics.histogram(
                            "server_first_attempt_seconds",
                            priority=str(req.priority),
                        ).observe(t_first - req.enqueued)
                attempts_total += 1
                try:
                    with telemetry.span(
                        "serve.attempt",
                        engine=engine,
                        attempt=attempts_total,
                        riders=[r.rid for r in group[1:]],
                    ):
                        out = self._apply_group(key, group, engine)
                except TRANSIENT_ERRORS:
                    breaker.record_failure()
                    self._count("faults_absorbed")
                    self.recorder.record(
                        "fault", rid=group[0].rid, engine=engine,
                        attempt=attempts_total, transient=True,
                    )
                    if attempt < self.max_attempts and \
                            breaker.state == CLOSED:
                        self._count("retries")
                        delay = backoff_delay(
                            attempt, self.backoff_base
                        )
                        if deadline is not None:
                            delay = min(
                                delay,
                                max(0.0, deadline - self._clock()),
                            )
                        if delay > 0:
                            self._sleep(delay)
                        continue
                    break   # breaker opened or budget spent: next rung
                except ReproError:
                    # Persistent (infeasible size, capacity wall):
                    # retrying cannot help — drop down the ladder.
                    breaker.record_failure()
                    self._count("faults_absorbed")
                    self.recorder.record(
                        "fault", rid=group[0].rid, engine=engine,
                        attempt=attempts_total, transient=False,
                    )
                    break
                breaker.record_success()
                if engine != registered:
                    self._count("degraded", len(group))
                self._deliver(group, out, engine, attempts_total)
                return
        if all_open:
            self._count("breaker.all_open")
            raise CircuitOpenError(
                "every engine breaker is open; retry after "
                f"{self._breaker_reset_s} s"
            )
        self._count("ladder_exhausted")
        raise ServingError(
            f"all engines failed for {key!r} "
            f"(ladder {' -> '.join(self._ladder(registered))}, "
            f"{attempts_total} attempts)"
        )

    def _serve_stream(self, group: list[_Request]) -> None:
        """Serve one dequeued stream stripe (groups are singletons).

        The first stripe of a job compiles/shards/prepares under the
        registered engine's breaker; every stripe then runs its
        assigned ``(phase, k)`` slice of the plan.  The last finisher
        finalizes the job and resolves the caller's future with the
        :class:`~repro.exec.StreamingStats`.  Failures fail the shared
        future exactly once and abort the job, so sibling stripes
        (queued or in flight) drain as no-ops.
        """
        req = group[0]
        job = req.stream
        assert job is not None
        if job.cancelled:
            # The job already failed (another stripe, a shed, or
            # shutdown); drain this stripe so the worker frees up.
            req.result._resolve(np.empty(0))
            self._count("stream.stripe_drained")
            return
        try:
            with telemetry.span(
                "serve.stripe", phase=req.phase, stripe=req.stripe
            ):
                prepared = job.ensure_prepared(self)
                timeout = None
                if req.deadline is not None:
                    timeout = max(0.0,
                                  req.deadline - self._clock())
                prepared.run_stripe(req.phase, req.stripe,
                                    timeout=timeout)
        except Exception as exc:
            job.fail(exc)
            raise
        req.result.engine = job.engine_name
        req.result._resolve(np.empty(0))
        if job.stripe_finished():
            stats = job.finalize()
            job.user_result.engine = job.engine_name
            job.user_result.service_s = stats.seconds
            job.user_result._resolve(stats)
            self._count("stream.completed")

    def _apply_group(
        self, key: str, group: list[_Request], engine: str
    ) -> np.ndarray | list[np.ndarray]:
        """One apply pass for the whole group on one engine."""
        if len(group) == 1 and not group[0].batch:
            return self.service.apply(
                key, group[0].payload, engine=engine
            )
        if len(group) == 1:
            return self.service.apply_batch(
                key, group[0].payload, engine=engine
            )
        stacked = np.stack([req.payload for req in group])
        self._count("coalesced", len(group) - 1)
        return self.service.apply_batch(key, stacked, engine=engine)

    def _deliver(
        self,
        group: list[_Request],
        out: np.ndarray,
        engine: str,
        attempts: int,
    ) -> None:
        if self.self_check:
            p = self.service._registration(group[0].key).p
            payloads = (
                out if len(group) > 1 else [np.asarray(out)]
            )
            for req, row in zip(group, payloads):
                expected = np.empty_like(np.asarray(req.payload))
                if req.batch:
                    expected[:, p] = req.payload
                else:
                    expected[p] = req.payload
                if not np.array_equal(row, expected):
                    self._count("self_check_failed")
                    raise ServingError(
                        f"engine {engine!r} produced a wrong answer "
                        "(caught by the server self-check)"
                    )
        coalesced = len(group) > 1
        for i, req in enumerate(group):
            req.result.engine = engine
            req.result.attempts = attempts
            req.result.coalesced = coalesced
            req.result._resolve(out[i] if coalesced else out)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Server counters merged with the underlying service stats.

        The server-side fields are captured as **one consistent
        snapshot**: the queue state and every ``server.*`` counter are
        read under a single combined lock section, so within one
        ``stats()`` dict invariants like ``accepted == served + failed
        + shed + deadline_exceeded + in-flight`` hold exactly.

        Two field classes — read them accordingly:

        * **monotonic counters** (``server.accepted``,
          ``server.served``, ``server.shed``, ``server.retries``,
          ``service.requests``-style fields, ...): only ever increase;
          rates are meaningful as deltas between two snapshots.
        * **instantaneous gauges** (``server.queue_depth``,
          ``server.latency_ema_s``): the value at snapshot time;
          deltas are meaningless.

        The ``service.*``/planner fields are sampled *after* the
        server fields (outside the server lock, since the service has
        its own): a concurrently served request can make the service
        counts slightly newer than the server counts, which preserves
        the observable invariant ``service requests >= server.served``
        (the service increments before the server marks a request
        served) — the reverse ordering could transiently violate it.
        """
        with self._cond:
            with self._stats_lock:
                counters = dict(self._counters)
                ema = self._latency_ema
                inflight = len(self._inflight_reqs)
            depth = self._size
        merged: dict = {
            f"server.{k}": v for k, v in counters.items()
        }
        merged["server.latency_ema_s"] = ema
        merged["server.queue_depth"] = depth
        merged["server.queue_capacity"] = self.queue_capacity
        merged["server.inflight"] = inflight
        merged.update(self.service.stats())
        return merged

    def health(self) -> dict:
        """A point-in-time health snapshot.

        ``status`` is ``"ok"`` when every breaker is closed, the queue
        has headroom, and the SLO is met, else ``"degraded"``.  The
        ``slo`` block carries the rolling-window availability, p99
        latency and error-budget burn rate
        (:meth:`~repro.telemetry.SLOMonitor.status`), and
        ``recorder`` summarises flight-recorder activity.
        """
        with self._stats_lock:
            breakers = {
                name: b.snapshot()
                for name, b in sorted(self._engine_breakers.items())
            }
        if self.disk_breaker is not None:
            breakers["disk"] = self.disk_breaker.snapshot()
        with self._cond:
            queue = {
                "depth": self._size,
                "capacity": self.queue_capacity,
                "workers": self.workers,
                "accepting": not self._stopping,
            }
            tenants = {
                name: state.snapshot()
                for name, state in sorted(self._tenants.items())
            }
        slo_status = self.slo_monitor.status()
        degraded = (
            any(b["state"] != CLOSED for b in breakers.values())
            or queue["depth"] >= queue["capacity"]
            or not queue["accepting"]
            or slo_status["breached"]
        )
        return {
            "status": "degraded" if degraded else "ok",
            "queue": queue,
            "breakers": breakers,
            "tenants": tenants,
            "slo": slo_status,
            "recorder": {
                "events": self.recorder.recorded,
                "dumps": self.recorder.dumps,
            },
        }
