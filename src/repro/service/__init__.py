"""The serving layer: a registry-of-permutations front door plus a
fault-tolerant concurrent serving core.

:class:`PermutationService` is the user-facing face of the
compile-once/apply-many stack: you *register* named permutations,
optionally *warm* the cache up front, then *serve* single or batched
applies; every request after the first for a given name is pure apply
time.  Hit/miss/eviction counters flow through both the planner's
plain integers and the telemetry subsystem, so an operator can watch
cache behaviour with an active tracer or via
:meth:`PermutationService.stats`.  The service is thread-safe: its
counters and registry are lock-guarded, so many callers can share one
instance.

:class:`PermutationServer` (:mod:`repro.service.server`) wraps a
service in a real server core for heavy mixed traffic: a bounded
request queue with admission control and priority load shedding,
per-request deadlines, budget-aware retries that degrade through the
engine ladder, per-tenant quotas, request coalescing, and circuit
breakers around the disk-cache tier and each engine.  See
``docs/serving.md``.

::

    from repro.service import PermutationService

    svc = PermutationService(width=32, cache_dir="plans/")
    svc.register("shuffle", p)
    svc.warm()                       # plan everything up front
    out = svc.apply("shuffle", a)    # cache hit: no planning
"""

from __future__ import annotations

import math
import threading
import time
from pathlib import Path
from typing import Any

import numpy as np

from repro import telemetry
from repro.errors import ValidationError
from repro.planner import (
    CompiledPermutation,
    Planner,
    permutation_digest,
)
from repro.util.validation import check_permutation

__all__ = [
    "CircuitBreaker",
    "PermutationServer",
    "PermutationService",
    "ServeResult",
    "TenantQuota",
]


def _default_engine(n: int, width: int) -> str:
    """Scheduled when n is a width-aligned square, padded otherwise."""
    m = math.isqrt(n) if n > 0 else 0
    if n > 0 and m * m == n and width > 0 and m % width == 0:
        return "scheduled"
    return "padded"


class _Registration:
    """One registered permutation: array, digest, engine choice."""

    def __init__(
        self, name: str, p: np.ndarray, engine: str, digest: str
    ) -> None:
        self.name = name
        self.p = p
        self.engine = engine
        self.digest = digest


class PermutationService:
    """Register permutations once, serve applies many times.

    Parameters
    ----------
    width:
        Warp width every registration is planned for.
    cache_size / cache_dir / backend:
        Forwarded to the owned :class:`~repro.planner.Planner` (unless
        an explicit ``planner`` is supplied, which takes precedence).
    """

    def __init__(
        self,
        width: int = 32,
        cache_size: int = 64,
        cache_dir: str | Path | None = None,
        backend: str = "auto",
        planner: Planner | None = None,
        metrics: Any | None = None,
        cache_max_bytes: int | None = None,
        disk_max_bytes: int | None = None,
    ) -> None:
        self.width = width
        self.planner = planner or Planner(
            cache_size=cache_size, cache_dir=cache_dir,
            backend=backend, cache_max_bytes=cache_max_bytes,
            disk_max_bytes=disk_max_bytes,
        )
        #: Optional :class:`~repro.telemetry.MetricsRegistry` shared
        #: with the owned planner; when set, every apply records
        #: ``exec_apply_seconds`` and the measured-vs-model
        #: ``exec_seconds_per_round`` gauge (wall time divided by the
        #: annotate-cost pass's ``predicted_rounds``), per engine.
        self.metrics = metrics
        if metrics is not None and self.planner.metrics is None:
            self.planner.metrics = metrics
        self._registry: dict[str, _Registration] = {}
        # Guards the registry and the plain-int request counters:
        # concurrent server workers increment them on every call, and
        # unlocked ``x += 1`` loses updates.
        self._lock = threading.Lock()
        self.requests = 0
        self.elements_served = 0
        self.reregistrations = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(
        self,
        name: str,
        p: np.ndarray,
        engine: str | None = None,
        overwrite: bool = False,
    ) -> str:
        """Register permutation ``p`` under ``name``.

        The permutation is validated and digested exactly once; the
        digest is reused by every later compile (including engine
        hops).  ``engine`` defaults to ``scheduled`` when ``n`` is a
        width-aligned perfect square and ``padded`` otherwise.
        Returns the plan fingerprint the registration will be cached
        under.

        Re-registering the *same* permutation (digest and engine both
        unchanged) is an idempotent no-op, so concurrent clients can
        race on registration safely.  Replacing a name with a
        *different* permutation or engine silently would repoint every
        live caller — that requires ``overwrite=True`` and is counted
        as ``service.reregistered``; without it the call raises
        :class:`~repro.errors.ValidationError`.
        """
        if not name:
            raise ValidationError("registration name must be non-empty")
        arr = check_permutation(p)
        chosen = engine or _default_engine(int(arr.shape[0]),
                                           self.width)
        digest = permutation_digest(arr)
        reregistered = False
        with self._lock:
            existing = self._registry.get(name)
            if existing is not None and (
                existing.digest != digest or existing.engine != chosen
            ):
                if not overwrite:
                    raise ValidationError(
                        f"{name!r} is already registered with a "
                        "different permutation or engine "
                        f"(engine {existing.engine!r}, digest "
                        f"{existing.digest[:12]}...); pass "
                        "overwrite=True to replace it"
                    )
                reregistered = True
                self.reregistrations += 1
            self._registry[name] = _Registration(
                name=name, p=arr, engine=chosen, digest=digest
            )
        telemetry.count("service.registered")
        if reregistered:
            telemetry.count("service.reregistered")
        return self.planner.fingerprint(
            arr, engine=chosen, width=self.width, digest=digest
        )

    def unregister(self, name: str) -> bool:
        """Drop a registration; returns whether it existed."""
        with self._lock:
            return self._registry.pop(name, None) is not None

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._registry)

    def _registration(self, name: str) -> _Registration:
        with self._lock:
            reg = self._registry.get(name)
            known = ", ".join(sorted(self._registry)) or "<none>"
        if reg is None:
            raise ValidationError(
                f"no permutation registered as {name!r}; "
                f"registered: {known}"
            )
        return reg

    # ------------------------------------------------------------------
    # Compilation / serving
    # ------------------------------------------------------------------

    def compiled(
        self, name: str, engine: str | None = None
    ) -> CompiledPermutation:
        """The compiled handle for ``name`` (planning at most once).

        ``engine`` overrides the registered engine choice — the hook
        the serving core's degradation ladder uses to hop engines
        while reusing the registration's digest.
        """
        reg = self._registration(name)
        return self.planner.compile(
            reg.p,
            engine=engine or reg.engine,
            width=self.width,
            digest=reg.digest,
        )

    def warm(self, names: list[str] | None = None) -> int:
        """Compile the named registrations (all, by default) so later
        applies are guaranteed cache hits.  Returns how many were
        warmed."""
        targets = names if names is not None else self.names()
        with telemetry.span("service.warm", count=len(targets)):
            for name in targets:
                self.compiled(name)
        return len(targets)

    def _observe_apply(
        self, compiled: CompiledPermutation, elapsed: float, mode: str
    ) -> None:
        """Record executor metrics for one finished apply pass.

        ``exec_apply_seconds`` is the wall-time distribution;
        ``exec_seconds_per_round`` divides it by the annotate-cost
        pass's ``predicted_rounds``, so a drifting measured-vs-model
        ratio (per engine) flags an executor regression the cost model
        did not predict.  Sealed handles are observed under
        ``mode="sealed"`` (the single-gather fast path) and read their
        predicted rounds from the sealed meta — observation never
        forces a lazy handle to rehydrate its full program.
        """
        if self.metrics is None:
            return
        if compiled.sealed is not None and mode in ("single", "batch"):
            mode = "sealed"
        engine = compiled.engine_name or "unknown"
        self.metrics.histogram(
            "exec_apply_seconds", engine=engine, mode=mode
        ).observe(elapsed)
        rounds = compiled.predicted_rounds()
        if rounds is not None:
            self.metrics.gauge(
                "exec_seconds_per_round", engine=engine, mode=mode
            ).set(elapsed / rounds)

    def apply(
        self, name: str, a: np.ndarray, engine: str | None = None
    ) -> np.ndarray:
        """Serve one payload through the named permutation."""
        compiled = self.compiled(name, engine=engine)
        t0 = time.perf_counter()
        out = compiled.apply(a)
        self._observe_apply(compiled, time.perf_counter() - t0,
                            "single")
        with self._lock:
            self.requests += 1
            self.elements_served += int(compiled.n)
        telemetry.count("service.requests")
        return out

    def apply_batch(
        self, name: str, batch: np.ndarray, engine: str | None = None
    ) -> np.ndarray:
        """Serve ``k`` stacked payloads through the named permutation."""
        compiled = self.compiled(name, engine=engine)
        t0 = time.perf_counter()
        out = compiled.apply_batch(batch)
        self._observe_apply(compiled, time.perf_counter() - t0,
                            "batch")
        k = int(np.asarray(batch).shape[0])
        with self._lock:
            self.requests += k
            self.elements_served += k * int(compiled.n)
        telemetry.count("service.requests", k)
        return out

    def apply_stream(
        self,
        name: str,
        path_in: str | Path,
        path_out: str | Path,
        d: int = 8,
        engine: str | None = None,
        max_resident_bytes: int | None = None,
        tmp_dir: str | Path | None = None,
    ) -> Any:
        """Serve an on-disk payload out-of-core.

        Streams the ``.npy`` payload at ``path_in`` through the named
        permutation's proven ``d``-stripe sharding under the
        resident-bytes budget, writing the result to ``path_out``.
        Returns the :class:`~repro.exec.StreamingStats`.
        """
        compiled = self.compiled(name, engine=engine)
        with telemetry.span(
            "service.apply_stream", plan=name, d=d
        ) as sp:
            t0 = time.perf_counter()
            stats = compiled.apply_stream(
                path_in,
                path_out,
                d=d,
                max_resident_bytes=max_resident_bytes,
                tmp_dir=tmp_dir,
            )
            elapsed = time.perf_counter() - t0
            sp.set(
                tiles=stats.tiles_loaded,
                peak_resident=stats.peak_resident_total_bytes,
            )
        self._observe_apply(compiled, elapsed, "stream")
        with self._lock:
            self.requests += 1
            self.elements_served += int(compiled.n)
        telemetry.count("service.requests")
        return stats

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Service counters merged with the planner's cache stats."""
        with self._lock:
            merged = {
                "registered": len(self._registry),
                "requests": self.requests,
                "elements_served": self.elements_served,
                "reregistrations": self.reregistrations,
            }
        merged.update(self.planner.stats())
        return merged

    def describe(self) -> str:
        lines = [
            f"PermutationService: {len(self._registry)} registered, "
            f"width {self.width}"
        ]
        for name in self.names():
            with self._lock:
                reg = self._registry[name]
            lines.append(
                f"  {name:<16} n={reg.p.shape[0]:<8} "
                f"engine={reg.engine:<10} digest={reg.digest[:12]}..."
            )
        for key, value in sorted(self.planner.stats().items()):
            lines.append(f"  {key:<18} {value}")
        return "\n".join(lines)


# Imported after PermutationService so repro.service.server can import
# the class from the (partially initialised) package.
from repro.service.breaker import CircuitBreaker  # noqa: E402
from repro.service.quotas import TenantQuota  # noqa: E402
from repro.service.server import (  # noqa: E402
    PermutationServer,
    ServeResult,
)
