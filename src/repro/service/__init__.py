"""The :class:`PermutationService` — a registry-of-permutations front
door for serving repeated permutation traffic.

The service is the user-facing face of the compile-once/apply-many
stack: you *register* named permutations, optionally *warm* the cache
up front, then *serve* single or batched applies; every request after
the first for a given name is pure apply time.  Hit/miss/eviction
counters flow through both the planner's plain integers and the
telemetry subsystem, so an operator can watch cache behaviour with an
active tracer or via :meth:`PermutationService.stats`.

::

    from repro.service import PermutationService

    svc = PermutationService(width=32, cache_dir="plans/")
    svc.register("shuffle", p)
    svc.warm()                       # plan everything up front
    out = svc.apply("shuffle", a)    # cache hit: no planning
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Any

import numpy as np

from repro import telemetry
from repro.errors import ValidationError
from repro.planner import (
    CompiledPermutation,
    Planner,
    permutation_digest,
)
from repro.util.validation import check_permutation

__all__ = ["PermutationService"]


def _default_engine(n: int, width: int) -> str:
    """Scheduled when n is a width-aligned square, padded otherwise."""
    m = math.isqrt(n) if n > 0 else 0
    if n > 0 and m * m == n and width > 0 and m % width == 0:
        return "scheduled"
    return "padded"


class _Registration:
    """One registered permutation: array, digest, engine choice."""

    def __init__(
        self, name: str, p: np.ndarray, engine: str, digest: str
    ) -> None:
        self.name = name
        self.p = p
        self.engine = engine
        self.digest = digest


class PermutationService:
    """Register permutations once, serve applies many times.

    Parameters
    ----------
    width:
        Warp width every registration is planned for.
    cache_size / cache_dir / backend:
        Forwarded to the owned :class:`~repro.planner.Planner` (unless
        an explicit ``planner`` is supplied, which takes precedence).
    """

    def __init__(
        self,
        width: int = 32,
        cache_size: int = 64,
        cache_dir: str | Path | None = None,
        backend: str = "auto",
        planner: Planner | None = None,
    ) -> None:
        self.width = width
        self.planner = planner or Planner(
            cache_size=cache_size, cache_dir=cache_dir, backend=backend
        )
        self._registry: dict[str, _Registration] = {}
        self.requests = 0
        self.elements_served = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(
        self, name: str, p: np.ndarray, engine: str | None = None
    ) -> str:
        """Register permutation ``p`` under ``name``.

        The permutation is validated and digested exactly once; the
        digest is reused by every later compile (including engine
        hops).  ``engine`` defaults to ``scheduled`` when ``n`` is a
        width-aligned perfect square and ``padded`` otherwise.
        Returns the plan fingerprint the registration will be cached
        under.
        """
        if not name:
            raise ValidationError("registration name must be non-empty")
        arr = check_permutation(p)
        chosen = engine or _default_engine(int(arr.shape[0]),
                                           self.width)
        digest = permutation_digest(arr)
        self._registry[name] = _Registration(
            name=name, p=arr, engine=chosen, digest=digest
        )
        telemetry.count("service.registered")
        return self.planner.fingerprint(
            arr, engine=chosen, width=self.width, digest=digest
        )

    def names(self) -> list[str]:
        return sorted(self._registry)

    def _registration(self, name: str) -> _Registration:
        reg = self._registry.get(name)
        if reg is None:
            known = ", ".join(sorted(self._registry)) or "<none>"
            raise ValidationError(
                f"no permutation registered as {name!r}; "
                f"registered: {known}"
            )
        return reg

    # ------------------------------------------------------------------
    # Compilation / serving
    # ------------------------------------------------------------------

    def compiled(self, name: str) -> CompiledPermutation:
        """The compiled handle for ``name`` (planning at most once)."""
        reg = self._registration(name)
        return self.planner.compile(
            reg.p,
            engine=reg.engine,
            width=self.width,
            digest=reg.digest,
        )

    def warm(self, names: list[str] | None = None) -> int:
        """Compile the named registrations (all, by default) so later
        applies are guaranteed cache hits.  Returns how many were
        warmed."""
        targets = names if names is not None else self.names()
        with telemetry.span("service.warm", count=len(targets)):
            for name in targets:
                self.compiled(name)
        return len(targets)

    def apply(self, name: str, a: np.ndarray) -> np.ndarray:
        """Serve one payload through the named permutation."""
        compiled = self.compiled(name)
        out = compiled.apply(a)
        self.requests += 1
        self.elements_served += int(compiled.n)
        telemetry.count("service.requests")
        return out

    def apply_batch(self, name: str, batch: np.ndarray) -> np.ndarray:
        """Serve ``k`` stacked payloads through the named permutation."""
        compiled = self.compiled(name)
        out = compiled.apply_batch(batch)
        k = int(np.asarray(batch).shape[0])
        self.requests += k
        self.elements_served += k * int(compiled.n)
        telemetry.count("service.requests", k)
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Service counters merged with the planner's cache stats."""
        merged = {
            "registered": len(self._registry),
            "requests": self.requests,
            "elements_served": self.elements_served,
        }
        merged.update(self.planner.stats())
        return merged

    def describe(self) -> str:
        lines = [
            f"PermutationService: {len(self._registry)} registered, "
            f"width {self.width}"
        ]
        for name in self.names():
            reg = self._registry[name]
            lines.append(
                f"  {name:<16} n={reg.p.shape[0]:<8} "
                f"engine={reg.engine:<10} digest={reg.digest[:12]}..."
            )
        for key, value in sorted(self.planner.stats().items()):
            lines.append(f"  {key:<18} {value}")
        return "\n".join(lines)
