"""Iterative radix-2 FFT with a pluggable bit-reversal stage.

The decimation-in-time Cooley–Tukey FFT first reorders its input by the
bit-reversal permutation and then runs ``log2(n)`` butterfly stages of
perfectly regular (coalesced) access — which is exactly why the paper
names bit-reversal as a key offline-permutation workload (Section IV:
"Bit-reversal is used for data reordering in the FFT algorithms").

The reorder step is delegated to a *permutation engine*: any callable
``engine(a) -> b`` implementing ``b[p[i]] = a[i]`` for the bit-reversal
permutation ``p``.  :class:`Radix2FFT` builds one from any of the
package's planners (by default a plain NumPy gather), so the examples
can measure the cost of the reorder under the conventional vs the
scheduled algorithm while computing bit-identical transforms.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.errors import SizeError
from repro.permutations.named import bit_reversal
from repro.util.validation import check_power_of_two

PermutationEngine = Callable[[np.ndarray], np.ndarray]


class Radix2FFT:
    """A reusable radix-2 DIT FFT plan for length-``n`` inputs.

    Parameters
    ----------
    n:
        Transform length; a power of two.
    engine:
        Optional permutation engine for the bit-reversal reorder; the
        default performs the reference scatter.  Engines from this
        package (e.g. ``ScheduledPermutation.plan(bit_reversal(n),
        w).apply``) plug in directly.
    """

    def __init__(self, n: int, engine: PermutationEngine | None = None) -> None:
        check_power_of_two(n, "n")
        self.n = n
        self.p = bit_reversal(n)
        self._engine = engine if engine is not None else self._default_engine
        # Precompute per-stage twiddles: stage s (half = 2**s) uses
        # exp(-2 pi i k / 2**(s+1)) for k < half.
        self._twiddles: list[np.ndarray] = []
        half = 1
        while half < n:
            k = np.arange(half)
            self._twiddles.append(np.exp(-2j * np.pi * k / (2 * half)))
            half *= 2

    def _default_engine(self, a: np.ndarray) -> np.ndarray:
        out = np.empty_like(a)
        out[self.p] = a
        return out

    def __call__(self, x: np.ndarray, inverse: bool = False) -> np.ndarray:
        """Compute the (inverse) DFT of ``x``.

        Matches :func:`numpy.fft.fft` / ``ifft`` conventions, including
        the ``1/n`` scaling of the inverse.
        """
        x = np.asarray(x)
        if x.shape != (self.n,):
            raise SizeError(f"input must have shape ({self.n},), got {x.shape}")
        data = x.astype(np.complex128, copy=True)
        # Bit-reversal reorder through the pluggable engine.  The
        # engine is destination-designated, and bit-reversal is an
        # involution, so out[i] = data[rev(i)] as DIT requires.
        data = np.asarray(self._engine(data), dtype=np.complex128)
        # log2(n) butterfly stages: fully regular strided access.
        for tw in self._twiddles:
            half = tw.shape[0]
            view = data.reshape(-1, 2 * half)
            top = view[:, :half]
            bottom = view[:, half:] * (np.conj(tw) if inverse else tw)
            view[:, :half], view[:, half:] = top + bottom, top - bottom
        if inverse:
            data /= self.n
        return data


def fft(x: np.ndarray, engine: PermutationEngine | None = None) -> np.ndarray:
    """One-shot FFT (see :class:`Radix2FFT` for the reusable plan)."""
    x = np.asarray(x)
    return Radix2FFT(x.shape[0], engine)(x)


def ifft(x: np.ndarray, engine: PermutationEngine | None = None) -> np.ndarray:
    """One-shot inverse FFT."""
    x = np.asarray(x)
    return Radix2FFT(x.shape[0], engine)(x, inverse=True)
