"""Batcher's bitonic sorting network with permutation-driven exchanges.

Sorting networks are the paper's second motivating workload ("sorting
networks such as bitonic sorting also involve permutation in each
stage").  A bitonic network on ``n = 2**k`` keys runs
``k (k + 1) / 2`` compare-exchange stages; in stage ``(k, j)`` every
element exchanges with its partner at index ``i XOR j`` — the butterfly
permutation, an involution.

:class:`BitonicSorter` fetches partner values through a pluggable
permutation engine (one engine per distinct ``j``), so the data
movement of the whole network can be routed through any of this
package's permutation algorithms and costed on the HMM.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.errors import SizeError
from repro.util.validation import check_power_of_two

PermutationEngine = Callable[[np.ndarray], np.ndarray]
EngineFactory = Callable[[np.ndarray], PermutationEngine]


def xor_permutation(n: int, j: int) -> np.ndarray:
    """The partner permutation of a bitonic stage: ``p[i] = i XOR j``.

    ``j`` must be a power of two below ``n``.  An involution, so the
    destination-designated convention coincides with the gather:
    ``b[i] = a[i XOR j]``.
    """
    check_power_of_two(n, "n")
    check_power_of_two(j, "j")
    if j >= n:
        raise SizeError(f"stage distance j = {j} must be below n = {n}")
    return np.arange(n, dtype=np.int64) ^ j


def _default_factory(p: np.ndarray) -> PermutationEngine:
    def engine(a: np.ndarray) -> np.ndarray:
        out = np.empty_like(a)
        out[p] = a
        return out

    return engine


class BitonicSorter:
    """A reusable bitonic sorting network for length-``n`` arrays.

    Parameters
    ----------
    n:
        Array length; a power of two.
    engine_factory:
        Maps a partner permutation ``p`` to an engine ``a -> b`` with
        ``b[p[i]] = a[i]``.  Called once per distinct stage distance
        (``log2(n)`` times) at construction — the *offline* planning the
        paper's algorithm is designed for; each engine is then reused
        across all stages with that distance.
    """

    def __init__(
        self, n: int, engine_factory: EngineFactory | None = None
    ) -> None:
        check_power_of_two(n, "n")
        self.n = n
        factory = engine_factory or _default_factory
        self._engines: dict[int, PermutationEngine] = {}
        j = 1
        while j < n:
            self._engines[j] = factory(xor_permutation(n, j))
            j *= 2

    @property
    def num_stages(self) -> int:
        """Number of compare-exchange stages: k(k+1)/2 for n = 2**k."""
        k = self.n.bit_length() - 1
        return k * (k + 1) // 2

    def stage_distances(self) -> list[int]:
        """The sequence of partner distances the network executes."""
        out: list[int] = []
        k = 2
        while k <= self.n:
            j = k // 2
            while j >= 1:
                out.append(j)
                j //= 2
            k *= 2
        return out

    def sort(self, x: np.ndarray, descending: bool = False) -> np.ndarray:
        """Sort ``x`` with the full network; returns a new array."""
        x = np.asarray(x)
        if x.shape != (self.n,):
            raise SizeError(f"input must have shape ({self.n},), got {x.shape}")
        data = x.copy()
        i = np.arange(self.n)
        k = 2
        while k <= self.n:
            j = k // 2
            while j >= 1:
                partner = self._engines[j](data)
                ascending_block = (i & k) == 0
                keep_min = ascending_block ^ ((i & j) != 0)
                if descending:
                    keep_min = ~keep_min
                data = np.where(
                    keep_min,
                    np.minimum(data, partner),
                    np.maximum(data, partner),
                )
                j //= 2
            k *= 2
        return data


def bitonic_sort(
    x: np.ndarray,
    engine_factory: EngineFactory | None = None,
    descending: bool = False,
) -> np.ndarray:
    """One-shot bitonic sort (see :class:`BitonicSorter` to reuse the
    planned network)."""
    x = np.asarray(x)
    return BitonicSorter(x.shape[0], engine_factory).sort(
        x, descending=descending
    )
