"""Multi-step network emulation driver.

The paper's Section I names processor-network emulation as an offline
permutation workload: a network algorithm is a fixed *sequence* of
communication steps, each a permutation known in advance.
:class:`NetworkEmulator` packages the workflow:

* plan every step once (engines chosen per step by the closed-form
  selector — mixed conventional/scheduled schedules are the norm, as
  the network-emulation example shows);
* push payloads through the whole sequence;
* account the total HMM cost and compare against single-engine
  alternatives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.conventional import DDesignatedPermutation
from repro.core.scheduled import ScheduledPermutation
from repro.core.selector import predict_times
from repro.errors import SizeError
from repro.machine.params import MachineParams
from repro.util.validation import check_permutation


@dataclass(frozen=True)
class PlannedStep:
    """One emulated communication step."""

    name: str
    engine_name: str
    engine: object
    predicted_time: int


class NetworkEmulator:
    """Plan and run a fixed sequence of communication permutations.

    Parameters
    ----------
    steps:
        ``(name, permutation)`` pairs, executed in order.
    params:
        Machine the costs are predicted/charged on.
    policy:
        ``"auto"`` (per-step selector), ``"conventional"`` or
        ``"scheduled"`` to force one engine everywhere.
    """

    def __init__(
        self,
        steps: list[tuple[str, np.ndarray]],
        params: MachineParams | None = None,
        policy: str = "auto",
    ) -> None:
        if policy not in ("auto", "conventional", "scheduled"):
            raise SizeError(
                f"policy must be auto|conventional|scheduled, got {policy!r}"
            )
        self.params = params or MachineParams()
        self.steps: list[PlannedStep] = []
        n = None
        for name, p in steps:
            p = check_permutation(p)
            if n is None:
                n = int(p.shape[0])
            elif p.shape[0] != n:
                raise SizeError(
                    "all steps must permute the same length; "
                    f"{name!r} has {p.shape[0]} != {n}"
                )
            self.steps.append(self._plan_step(name, p, policy))
        self.n = n or 0

    def _plan_step(self, name: str, p: np.ndarray, policy: str) -> PlannedStep:
        prediction = predict_times(p, self.params)
        if policy == "conventional":
            choice = "d-designated"
        elif policy == "scheduled":
            if prediction.scheduled is None:
                raise SizeError(
                    f"step {name!r}: scheduled engine infeasible for "
                    f"n = {p.shape[0]} on this machine"
                )
            choice = "scheduled"
        else:
            choice = prediction.best
        if choice == "scheduled":
            engine = ScheduledPermutation.plan(p, width=self.params.width)
            time = prediction.scheduled
        else:
            engine = DDesignatedPermutation(p)
            time = prediction.d_designated
        assert time is not None
        return PlannedStep(
            name=name, engine_name=choice, engine=engine,
            predicted_time=int(time),
        )

    @property
    def total_predicted_time(self) -> int:
        """Model cost of running the whole sequence once."""
        return sum(s.predicted_time for s in self.steps)

    def engine_mix(self) -> dict[str, int]:
        """How many steps each engine won."""
        mix: dict[str, int] = {}
        for s in self.steps:
            mix[s.engine_name] = mix.get(s.engine_name, 0) + 1
        return mix

    def run(self, a: np.ndarray) -> np.ndarray:
        """Push a payload through every step, in order."""
        a = np.asarray(a)
        if a.shape != (self.n,):
            raise SizeError(f"a must have shape ({self.n},), got {a.shape}")
        for step in self.steps:
            a = step.engine.apply(a)
        return a

    def reference(self, a: np.ndarray) -> np.ndarray:
        """Ground truth: plain scatters through every step."""
        a = np.asarray(a)
        for step in self.steps:
            p = step.engine.p
            out = np.empty_like(a)
            out[np.asarray(p, dtype=np.int64)] = a
            a = out
        return a
