"""Application substrates motivating offline permutation (paper Section I).

The paper motivates the offline permutation with "many applications in
the area of parallel computing": FFT data reordering, sorting-network
stages, matrix computation and processor-network emulation.  This
subpackage implements two of those applications end to end so the
examples can drive the permutation engines inside a real workload:

* :mod:`repro.apps.fft` — an iterative radix-2 Cooley–Tukey FFT whose
  decimation-in-time reorder *is* the bit-reversal permutation;
* :mod:`repro.apps.bitonic` — Batcher's bitonic sorting network, whose
  stages exchange data along XOR-partner (butterfly) permutations.

Both accept a pluggable *permutation engine* so any of the package's
algorithms (conventional, scheduled, CPU-blocked) can supply the data
movement.
"""

from repro.apps.fft import Radix2FFT, fft, ifft
from repro.apps.bitonic import BitonicSorter, bitonic_sort, xor_permutation
from repro.apps.emulation import NetworkEmulator, PlannedStep

__all__ = [
    "BitonicSorter",
    "NetworkEmulator",
    "PlannedStep",
    "Radix2FFT",
    "bitonic_sort",
    "fft",
    "ifft",
    "xor_permutation",
]
