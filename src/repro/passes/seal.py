"""The ``seal`` pass stage: materialize a program's proven denotation.

Sealing is the terminal pass: it runs *after* the optimizing pipeline
and collapses whatever program came out of it into a
:class:`~repro.ir.sealed.SealedProgram` — the flat index map the
program denotes, plus its inverse, with provenance.  Unlike the
rewriting passes it does not return a :class:`KernelProgram`; it
returns the sealed form, so it lives beside the pipeline rather than
inside it (the pipeline signature still names what was sealed).

Correctness is inherited, not asserted: the index map is either the
symbolic denotation of :func:`repro.staticcheck.semantics.
denote_program` (bijectivity proved element by element) or — the fast
path the planner takes — the requested permutation itself, admissible
exactly when a positive translation-validation certificate already
proved ``denote(program) == requested``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import SemanticValidationError, ValidationError
from repro.ir.program import KernelProgram
from repro.ir.sealed import SealedProgram, invert_permutation
from repro.staticcheck.semantics import (
    denotation_digest,
    denote_program,
)

__all__ = ["seal_program"]


def seal_program(
    program: KernelProgram,
    requested: np.ndarray | None = None,
    certificate: Any | None = None,
    fingerprint: str | None = None,
    pipeline_signature: str | None = None,
    plan_sha: str | None = None,
) -> SealedProgram:
    """Collapse ``program`` into its proven :class:`SealedProgram`.

    With a positive ``certificate`` whose ``requested_sha`` digests
    ``requested``, the certificate's proof is reused and ``requested``
    becomes the scatter map directly — no re-denotation (the planner's
    hot path: it just validated the translation).  Otherwise the
    program is denoted symbolically and the denotation's bijectivity
    proof gates the seal; a program that does not denote a permutation
    raises :class:`~repro.errors.SemanticValidationError`.

    ``fingerprint`` / ``pipeline_signature`` / ``plan_sha`` stamp the
    provenance meta, alongside the denotation digest and the cost
    model's ``predicted_rounds`` annotation when the program carries
    one.
    """
    scatter: np.ndarray | None = None
    denotation_sha: str | None = None
    if requested is not None and certificate is not None:
        wanted = np.ascontiguousarray(
            np.asarray(requested, dtype=np.int64)
        )
        if (
            getattr(certificate, "ok", False)
            and getattr(certificate, "requested_sha", None)
            == denotation_digest(wanted)
        ):
            scatter = wanted
            denotation_sha = str(certificate.denotation_sha)
    if scatter is None:
        denotation = denote_program(program)
        if not denotation.ok:
            assert denotation.failure is not None
            raise SemanticValidationError(
                "refusing to seal: program does not denote a "
                f"permutation — {denotation.failure.describe()}"
            )
        scatter = denotation.index_map
        denotation_sha = denotation.digest()
        if requested is not None and not np.array_equal(
            scatter, np.asarray(requested, dtype=np.int64)
        ):
            raise SemanticValidationError(
                "refusing to seal: program denotes a different "
                "permutation than the requested one"
            )
    if scatter.shape[0] != program.n:
        raise ValidationError(
            f"sealed index map length {scatter.shape[0]} does not "
            f"match the program's input size {program.n}"
        )
    meta: dict[str, Any] = {"denotation_sha": denotation_sha}
    if fingerprint is not None:
        meta["fingerprint"] = fingerprint
    if pipeline_signature is not None:
        meta["pipeline"] = pipeline_signature
    if plan_sha is not None:
        meta["plan_sha"] = plan_sha
    rounds = (program.meta or {}).get("predicted_rounds")
    if isinstance(rounds, int) and rounds > 0:
        meta["predicted_rounds"] = rounds
    return SealedProgram(
        engine=program.engine,
        width=program.width,
        scatter=scatter,
        gather=invert_permutation(scatter),
        meta=meta,
    )
