"""Concrete optimization passes over the kernel-program IR.

Every pass here is semantics-preserving with respect to the
:class:`~repro.exec.reference.ReferenceExecutor` and only ever
*removes* rounds; the property tests in ``tests/passes`` pin both
claims for all nine registered engines.

The **default pipeline** (see :func:`repro.passes.default_pipeline`)
is deliberately conservative: it removes structure that is free on the
machine model (zero-round no-op pads/slices, adjacent transpose pairs,
adjacent row maps or casual chains that *compose* — including to the
identity).  It does **not** silently delete a standalone
data-dependent identity op (e.g. ``casual-write`` with ``p = id``):
such an op still costs real memory rounds on the HMM, and the repo's
cost tables (`conventional_time`, Table II) price exactly those
rounds.  Full identity elimination lives in :class:`DropIdentityOps`,
which the opt-in :func:`repro.passes.aggressive_pipeline` enables.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.ir.ops import (
    CasualRead,
    CasualWrite,
    CycleRotate,
    KernelOp,
    Pad,
    RowwiseScatter,
    Slice,
    Transpose,
)
from repro.ir.program import KernelProgram


def _with_ops(
    program: KernelProgram, ops: list[KernelOp]
) -> KernelProgram:
    """New program with ``ops``; stale cost annotations are dropped."""
    return replace(program, ops=tuple(ops), meta=None)


def _is_identity_1d(arr: np.ndarray) -> bool:
    return bool(np.array_equal(arr, np.arange(arr.shape[0])))


def _is_identity_rows(gamma: np.ndarray) -> bool:
    return bool((gamma == np.arange(gamma.shape[1])).all())


def _compose_rows(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row map of scatter-by-``a`` then scatter-by-``b``:
    ``composed[r, c] = b[r, a[r, c]]``."""
    rows = np.arange(a.shape[0])[:, None]
    return np.asarray(b[rows, a])


class CancelAdjacentTransposes:
    """Remove adjacent ``transpose`` pairs of the same matrix size.

    ``T ∘ T = id`` for a square transpose regardless of tiling or
    diagonal slot rotation (those change the access *schedule*, not
    the value semantics), so back-to-back programs such as a
    permutation concatenated with its inverse lose 2 x 4 rounds per
    cancelled pair.
    """

    name = "cancel-transposes"

    def run(self, program: KernelProgram) -> KernelProgram:
        ops = program.ops
        out: list[KernelOp] = []
        i = 0
        changed = False
        while i < len(ops):
            op = ops[i]
            nxt = ops[i + 1] if i + 1 < len(ops) else None
            if (
                isinstance(op, Transpose)
                and isinstance(nxt, Transpose)
                and op.m == nxt.m
            ):
                i += 2
                changed = True
                continue
            out.append(op)
            i += 1
        return _with_ops(program, out) if changed else program


class SimplifyPadSlice:
    """Remove and merge no-op ``pad``/``slice`` resizing.

    Rules (all size-checked against the live size chain):

    * ``Pad(n, n)`` — zero growth — is dropped.
    * ``Slice(n)`` on an ``n``-element input is dropped.
    * ``Pad(n, N)`` immediately sliced back to ``k <= n`` elements
      never observes the padding: the pair becomes ``Slice(k)`` (or
      vanishes when ``k == n``).
    * Adjacent pads merge; adjacent slices keep only the tighter one.

    ``Slice`` *then* ``Pad`` is never touched: slicing discards data,
    so the pair is not a no-op even when the sizes round-trip.
    """

    name = "simplify-pad-slice"

    def run(self, program: KernelProgram) -> KernelProgram:
        ops = program.ops
        out: list[KernelOp] = []
        size = program.n
        i = 0
        changed = False
        while i < len(ops):
            op = ops[i]
            nxt = ops[i + 1] if i + 1 < len(ops) else None
            if isinstance(op, Pad) and op.padded_n == size:
                i += 1
                changed = True
                continue
            if isinstance(op, Slice) and op.n == size:
                i += 1
                changed = True
                continue
            if (
                isinstance(op, Pad)
                and isinstance(nxt, Slice)
                and nxt.n <= op.n
            ):
                # The slice never reaches the zero padding.
                if nxt.n < size:
                    out.append(nxt)
                size = nxt.n
                i += 2
                changed = True
                continue
            if isinstance(op, Pad) and isinstance(nxt, Pad):
                merged = Pad(
                    label=op.label, n=op.n, padded_n=nxt.padded_n
                )
                ops = ops[:i] + (merged,) + ops[i + 2:]
                changed = True
                continue
            if isinstance(op, Slice) and isinstance(nxt, Slice):
                merged = Slice(label=nxt.label, n=nxt.n)
                ops = ops[:i] + (merged,) + ops[i + 2:]
                changed = True
                continue
            out.append(op)
            size = op.out_size(size)
            i += 1
        return _with_ops(program, out) if changed else program


class FuseRowwiseSteps:
    """Fuse adjacent ``rowwise-scatter`` ops whose row maps compose.

    Two scatters over the same matrix shape compose to a single
    scatter with ``gamma[r, c] = g2[r, g1[r, c]]``.  When the
    composition is the identity the pair is dropped outright (this is
    what collapses a permutation composed with its inverse).  A
    non-identity composition is only materialised for *unscheduled*
    (casual, 3-round) scatters — fusing two scheduled 8-round kernels
    would need re-deriving the conflict-free ``s``/``t`` schedules, so
    scheduled pairs are left alone.
    """

    name = "fuse-rowwise"

    def run(self, program: KernelProgram) -> KernelProgram:
        ops = program.ops
        out: list[KernelOp] = []
        i = 0
        changed = False
        while i < len(ops):
            op = ops[i]
            nxt = ops[i + 1] if i + 1 < len(ops) else None
            if (
                isinstance(op, RowwiseScatter)
                and isinstance(nxt, RowwiseScatter)
                and op.gamma.shape == nxt.gamma.shape
            ):
                composed = _compose_rows(op.gamma, nxt.gamma)
                if _is_identity_rows(composed):
                    i += 2
                    changed = True
                    continue
                if not op.scheduled and not nxt.scheduled:
                    out.append(
                        RowwiseScatter(
                            label=f"{op.label}+{nxt.label}",
                            gamma=composed,
                            width=0,
                        )
                    )
                    i += 2
                    changed = True
                    continue
            out.append(op)
            i += 1
        return _with_ops(program, out) if changed else program


class FuseCasualChains:
    """Fuse adjacent casual writes, reads, or cycle rotations.

    ``b[p2[p1[i]]] = a[i]`` for write-after-write, ``b[i] =
    a[q1[q2[i]]]`` for read-after-read, and likewise for the
    cycle-following op.  Identity compositions are dropped.
    """

    name = "fuse-casual"

    def run(self, program: KernelProgram) -> KernelProgram:
        ops = program.ops
        out: list[KernelOp] = []
        i = 0
        changed = False
        while i < len(ops):
            op = ops[i]
            nxt = ops[i + 1] if i + 1 < len(ops) else None
            fused = self._fuse_pair(op, nxt)
            if fused is not None:
                out.extend(fused)
                i += 2
                changed = True
                continue
            out.append(op)
            i += 1
        return _with_ops(program, out) if changed else program

    @staticmethod
    def _fuse_pair(
        op: KernelOp, nxt: KernelOp | None
    ) -> list[KernelOp] | None:
        """The replacement for a fusable pair, or None."""
        if (
            isinstance(op, CasualWrite)
            and isinstance(nxt, CasualWrite)
            and op.space == nxt.space
            and op.p.shape == nxt.p.shape
        ):
            composed = np.asarray(nxt.p[op.p])
            if _is_identity_1d(composed):
                return []
            return [
                CasualWrite(
                    label=f"{op.label}+{nxt.label}",
                    p=composed,
                    space=op.space,
                )
            ]
        if (
            isinstance(op, CasualRead)
            and isinstance(nxt, CasualRead)
            and op.space == nxt.space
            and op.q.shape == nxt.q.shape
        ):
            composed = np.asarray(op.q[nxt.q])
            if _is_identity_1d(composed):
                return []
            return [
                CasualRead(
                    label=f"{op.label}+{nxt.label}",
                    q=composed,
                    space=op.space,
                )
            ]
        if (
            isinstance(op, CycleRotate)
            and isinstance(nxt, CycleRotate)
            and op.p.shape == nxt.p.shape
        ):
            composed = np.asarray(nxt.p[op.p])
            if _is_identity_1d(composed):
                return []
            return [
                CycleRotate(
                    label=f"{op.label}+{nxt.label}", p=composed
                )
            ]
        return None


class DropIdentityOps:
    """Delete every op that provably permutes nothing.

    This is the full-strength identity elimination: a lone
    ``casual-write`` with ``p = id``, a ``cycle-rotate`` of the
    identity, a ``1 x 1`` transpose, an identity ``gather-scatter``,
    and so on.  It is **not** part of the default pipeline, because an
    identity kernel still costs its memory rounds on the HMM and the
    cost tables price those rounds; enable it explicitly via
    :func:`repro.passes.aggressive_pipeline` when modelled cost of
    identity traffic is not wanted.
    """

    name = "drop-identities"

    def run(self, program: KernelProgram) -> KernelProgram:
        out: list[KernelOp] = []
        size = program.n
        changed = False
        for op in program.ops:
            if self._is_identity(op, size):
                changed = True
                continue
            out.append(op)
            size = op.out_size(size)
        return _with_ops(program, out) if changed else program

    @staticmethod
    def _is_identity(op: KernelOp, size: int) -> bool:
        if isinstance(op, RowwiseScatter):
            return _is_identity_rows(op.gamma)
        if isinstance(op, Transpose):
            return op.m == 1
        if isinstance(op, (CasualWrite, CycleRotate)):
            return _is_identity_1d(op.p)
        if isinstance(op, CasualRead):
            return _is_identity_1d(op.q)
        if isinstance(op, Pad):
            return op.padded_n == size
        if isinstance(op, Slice):
            return op.n == size
        from repro.ir.ops import GatherScatter

        if isinstance(op, GatherScatter):
            return bool(
                np.array_equal(op.s, op.t)
                and np.array_equal(
                    np.sort(op.s), np.arange(op.s.shape[0])
                )
            )
        return False


class AnnotateCost:
    """Annotate the program with its predicted cost (meta only).

    Writes ``program.meta`` with the round total, a per-op breakdown,
    and ``predicted_stages`` — the number of width-wide memory stages
    the HMM needs (``rounds x n/width``; for width-0 CPU programs each
    round is ``n`` sequential stages).  The selector ranks *optimized*
    programs by this annotation, so cancelled ops lower an engine's
    rank cost.  Never changes ``ops``.

    Regular width-``w`` programs additionally get ``sharded_times``:
    the out-of-core three-phase model total for each shard count ``d``
    in ``(1, 2, 4, 8)`` dividing ``n``, priced with the worst-case
    inter-DMM exchange (every element crosses a stripe).  This makes
    the planner's engine choice shard-aware without planning: any
    consumer comparing optimized programs can also read off how each
    would scale when striped across DMMs.
    """

    name = "annotate-cost"

    #: Default latency used for the shard-scaling annotation; matches
    #: :class:`~repro.machine.params.MachineParams` so the numbers are
    #: comparable with ``predict`` output out of the box.
    latency = 100

    #: Shard counts priced in the ``sharded_times`` annotation.
    shard_counts = (1, 2, 4, 8)

    def run(self, program: KernelProgram) -> KernelProgram:
        n = program.n
        width = program.width
        rounds = program.num_rounds
        if width > 0:
            stages = rounds * -(-n // width)
        else:
            stages = rounds * n
        meta: dict[str, object] = {
            "predicted_rounds": int(rounds),
            "predicted_stages": int(stages),
            "num_ops": len(program.ops),
            "regular": bool(program.is_regular),
            "rounds_by_op": tuple(
                (op.kind, op.label, int(op.num_rounds))
                for op in program.ops
            ),
        }
        sharded = self._sharded_times(n, width)
        if sharded:
            meta["sharded_times"] = sharded
        if program.meta == meta:
            return program
        return replace(program, meta=meta)

    def _sharded_times(
        self, n: int, width: int
    ) -> tuple[tuple[int, int], ...]:
        from repro.core.theory import sharded_time

        if width <= 0 or n <= 0 or n % width != 0:
            return ()
        return tuple(
            (d, int(sharded_time(n, width, self.latency, d)))
            for d in self.shard_counts
            if n % d == 0
        )
