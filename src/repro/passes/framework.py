"""The pass framework: typed rewrites over :class:`KernelProgram`.

A **pass** is a semantics-preserving program rewrite: it receives a
validated :class:`~repro.ir.program.KernelProgram` and returns either
the *same object* (nothing to do) or a new, equivalent program —
equivalence meaning the :class:`~repro.exec.reference.ReferenceExecutor`
output is bitwise identical for every input array.  Passes may only
*remove* cost (drop ops, merge ops); they never add rounds, so an
optimized program's ``num_rounds`` is always ``<=`` the original's.

A :class:`PassPipeline` runs its passes to a fixpoint (a fusion can
expose a transpose pair, whose cancellation can expose another fusion,
…), each application under a ``passes.<name>`` telemetry span, and
records a :class:`PassChange` per applied rewrite so ``explain()`` can
show exactly what happened.  When optimization cancels *everything*
(e.g. a permutation composed with its inverse), the empty program is
replaced by the canonical identity guard — a single zero-round
``slice`` op — because an empty op list is not a valid program.

The pipeline's :meth:`~PassPipeline.signature` names the pipeline, its
version and its pass list; the planner folds it into plan fingerprints
so a pipeline change invalidates cached plans, and ``save_plan``
records it as provenance metadata in plan files.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from repro import telemetry
from repro.ir.ops import Slice
from repro.ir.program import KernelProgram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.staticcheck.semantics import SemanticChecker

#: Version of the pass-pipeline *semantics*; bump whenever a pass
#: changes behaviour so content-addressed plan caches are invalidated.
PIPELINE_VERSION = "1"


@runtime_checkable
class Pass(Protocol):
    """Structural type of one optimization pass."""

    @property
    def name(self) -> str: ...

    def run(self, program: KernelProgram) -> KernelProgram: ...


@dataclass(frozen=True)
class PassChange:
    """One applied rewrite, for ``explain()`` diffs."""

    name: str
    ops_before: int
    ops_after: int
    rounds_before: int
    rounds_after: int

    def format(self) -> str:
        return (
            f"{self.name}: {self.ops_before} -> {self.ops_after} op(s), "
            f"{self.rounds_before} -> {self.rounds_after} round(s)"
        )


def identity_guard(program: KernelProgram) -> KernelProgram:
    """The canonical fully-optimized program: one zero-round identity
    ``slice`` (``Slice(n)`` on a length-``n`` input copies it)."""
    return replace(
        program, ops=(Slice(label="identity", n=program.n),), meta=None
    )


def is_identity_guard(program: KernelProgram) -> bool:
    ops = program.ops
    return (
        len(ops) == 1
        and isinstance(ops[0], Slice)
        and ops[0].n == program.n
    )


class PassPipeline:
    """An ordered list of passes, run to a fixpoint.

    Parameters
    ----------
    passes:
        The passes, in application order.  A cost-annotation pass (one
        that only writes ``program.meta``) is conventionally last.
    name:
        Pipeline name, part of :meth:`signature`.
    version:
        Semantic version folded into :meth:`signature` (defaults to
        :data:`PIPELINE_VERSION`).
    """

    def __init__(
        self,
        passes: tuple[Pass, ...] | list[Pass],
        name: str = "default",
        version: str = PIPELINE_VERSION,
    ) -> None:
        self.passes: tuple[Pass, ...] = tuple(passes)
        if not self.passes:
            from repro.errors import ValidationError

            raise ValidationError(
                "a PassPipeline needs at least one pass (its signature "
                "keys plan caches, and an empty pass list is almost "
                "certainly a construction bug)"
            )
        self.name = name
        self.version = version

    def signature(self) -> str:
        """Stable identity of this pipeline: name, version, pass list.

        Folded into plan fingerprints and stored as plan-file
        provenance, so two plans optimized by different pipelines never
        share a cache entry.
        """
        names = ",".join(p.name for p in self.passes)
        return f"{self.name}@v{self.version}({names})"

    def describe(self) -> str:
        """One line per pass: name and first docstring line."""
        lines = [f"pipeline {self.signature()}"]
        for p in self.passes:
            doc = (type(p).__doc__ or "").strip().splitlines()
            summary = doc[0] if doc else ""
            lines.append(f"  {p.name:<20} {summary}")
        return "\n".join(lines)

    def run(
        self, program: KernelProgram, validate: bool = False
    ) -> KernelProgram:
        """Optimize ``program``; the result is semantically identical
        and never costs more rounds.

        With ``validate=True`` every applied rewrite is translation-
        validated: the pipeline denotes the input program once
        (:func:`repro.staticcheck.semantics.denote_program`), re-denotes
        after each applied pass, and raises
        :class:`~repro.errors.SemanticValidationError` — blaming the
        exact pass on the attached certificate — the moment a rewrite
        changes the denoted index map.  No executor runs and no payload
        moves in either mode.
        """
        optimized, _changes = self.explain(program, validate=validate)
        return optimized

    def explain(
        self, program: KernelProgram, validate: bool = False
    ) -> tuple[KernelProgram, list[PassChange]]:
        """Like :meth:`run`, but also return the per-pass diff."""
        program.validate()
        checker = None
        if validate:
            # Deferred import: repro.staticcheck.semantics depends on
            # the IR only, but the staticcheck package as a whole pulls
            # in layers that import this module.
            from repro.staticcheck.semantics import SemanticChecker

            checker = SemanticChecker(program)
        changes: list[PassChange] = []
        with telemetry.span(
            "passes.pipeline", engine=program.engine,
            pipeline=self.signature(),
        ) as sp:
            current = program
            # Each applied structural pass strictly shrinks the op list
            # (or only touches meta), so len(ops) + 2 sweeps bound the
            # fixpoint loop.
            for _sweep in range(len(program.ops) + 2):
                before_sweep = current
                for p in self.passes:
                    current = self._apply_one(
                        p, current, changes, checker
                    )
                if current is before_sweep:
                    break
            sp.set(
                ops_before=len(program.ops),
                ops_after=len(current.ops),
                rounds_before=program.num_rounds,
                rounds_after=current.num_rounds,
            )
        telemetry.count("passes.programs_optimized")
        return current, changes

    def _apply_one(
        self,
        p: Pass,
        current: KernelProgram,
        changes: list[PassChange],
        checker: "SemanticChecker | None" = None,
    ) -> KernelProgram:
        with telemetry.span("passes." + p.name):
            after = p.run(current)
        if after is current:
            return current
        if not after.ops:
            # Everything cancelled; substitute the canonical identity
            # guard — unless the input already was it (fixpoint).
            if is_identity_guard(current):
                return current
            after = identity_guard(after)
        after.validate()
        if checker is not None:
            checker.check(p.name, after)
        changes.append(
            PassChange(
                name=p.name,
                ops_before=len(current.ops),
                ops_after=len(after.ops),
                rounds_before=current.num_rounds,
                rounds_after=after.num_rounds,
            )
        )
        telemetry.count("passes.applied." + p.name)
        return after


class ValidatedPass:
    """Gate a pass behind the semantic validator.

    Wraps an inner pass and refuses any rewrite whose denoted index
    map differs from the input's: the unproven rewrite is simply not
    applied (the input program is returned unchanged) and a
    ``passes.semantic.refused.<name>`` telemetry counter records the
    refusal.  This is how ``aggressive_pipeline`` makes
    ``drop-identities`` provably safe without giving up on it — a bad
    drop degrades to a no-op instead of a wrong answer.

    The wrapper's name (``validated(<inner>)``) is part of the
    pipeline signature, so gating a pass invalidates content-addressed
    plan caches exactly like changing the pass itself would.
    """

    def __init__(self, inner: Pass) -> None:
        self.inner = inner

    @property
    def name(self) -> str:
        return f"validated({self.inner.name})"

    def run(self, program: KernelProgram) -> KernelProgram:
        after = self.inner.run(program)
        if after is program:
            return program
        from repro.staticcheck.semantics import denote_program

        before_den = denote_program(program)
        if not before_den.ok:
            # Nothing provable to preserve; keep the input untouched.
            telemetry.count("passes.semantic.refused." + self.inner.name)
            return program
        if after.ops:
            after_den = denote_program(after)
            preserved = after_den.ok and np.array_equal(
                before_den.index_map, after_den.index_map
            )
        else:
            # The framework will substitute the identity guard, which
            # denotes the identity map.
            preserved = bool(
                np.array_equal(
                    before_den.index_map,
                    np.arange(program.n, dtype=np.int64),
                )
            )
        if not preserved:
            telemetry.count("passes.semantic.refused." + self.inner.name)
            return program
        return after
