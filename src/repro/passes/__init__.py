"""Optimization passes over the kernel-program IR.

Public surface::

    from repro.passes import default_pipeline

    optimized = default_pipeline().run(engine.lower())

``default_pipeline()`` returns the process-wide conservative pipeline
every engine's ``lower_optimized()`` routes through (see the module
docstring of :mod:`repro.passes.optimizations` for what it does and
does not remove); ``aggressive_pipeline()`` additionally drops
standalone identity ops.  Both are cheap to construct, but the default
is cached because its :meth:`~repro.passes.framework.PassPipeline.signature`
participates in plan fingerprints and must be one stable object per
process.
"""

from __future__ import annotations

from repro.passes.framework import (
    PIPELINE_VERSION,
    Pass,
    PassChange,
    PassPipeline,
    ValidatedPass,
    identity_guard,
    is_identity_guard,
)
from repro.passes.optimizations import (
    AnnotateCost,
    CancelAdjacentTransposes,
    DropIdentityOps,
    FuseCasualChains,
    FuseRowwiseSteps,
    SimplifyPadSlice,
)
from repro.passes.seal import seal_program

__all__ = [
    "PIPELINE_VERSION",
    "AnnotateCost",
    "CancelAdjacentTransposes",
    "DropIdentityOps",
    "FuseCasualChains",
    "FuseRowwiseSteps",
    "Pass",
    "PassChange",
    "PassPipeline",
    "SimplifyPadSlice",
    "ValidatedPass",
    "aggressive_pipeline",
    "default_pipeline",
    "identity_guard",
    "is_identity_guard",
    "seal_program",
]

_DEFAULT: PassPipeline | None = None


def default_pipeline() -> PassPipeline:
    """The conservative pipeline all engines route ``lower()``
    through (cached: one instance per process)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = PassPipeline(
            (
                SimplifyPadSlice(),
                FuseRowwiseSteps(),
                FuseCasualChains(),
                CancelAdjacentTransposes(),
                AnnotateCost(),
            ),
            name="default",
        )
    return _DEFAULT


def aggressive_pipeline() -> PassPipeline:
    """The default passes plus full identity-op elimination.

    Opt-in: deleting a standalone identity kernel changes the
    program's *modelled* cost (those rounds are real on the HMM — see
    the Table II identity-pricing note in ``docs/architecture.md``), so
    the simulator-facing default keeps them.  The drop is gated behind
    :class:`~repro.passes.framework.ValidatedPass`: a drop that would
    change the program's denoted index map is refused rather than
    applied, so aggressive mode is provably semantics-preserving.
    """
    return PassPipeline(
        (
            SimplifyPadSlice(),
            FuseRowwiseSteps(),
            FuseCasualChains(),
            ValidatedPass(DropIdentityOps()),
            CancelAdjacentTransposes(),
            AnnotateCost(),
        ),
        name="aggressive",
    )
