"""Shared low-level utilities: validation helpers, RNG plumbing, array ops."""

from repro.util.validation import (
    check_permutation,
    check_power_of_two,
    check_square,
    is_permutation,
    is_power_of_two,
    isqrt_exact,
)
from repro.util.arrays import (
    as_1d,
    as_index_array,
    interleave,
    reshape_square,
    smallest_index_dtype,
)
from repro.util.rng import resolve_rng

__all__ = [
    "as_1d",
    "as_index_array",
    "check_permutation",
    "check_power_of_two",
    "check_square",
    "interleave",
    "is_permutation",
    "is_power_of_two",
    "isqrt_exact",
    "reshape_square",
    "resolve_rng",
    "smallest_index_dtype",
]
