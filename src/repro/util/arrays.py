"""Small array helpers shared across the package.

These are deliberately tiny, allocation-conscious functions following the
project's performance guide: prefer views over copies, keep dtypes small,
and make contiguity explicit at API boundaries.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.errors import SizeError
from repro.util.validation import isqrt_exact


def as_1d(a: npt.ArrayLike, what: str = "array") -> np.ndarray:
    """Return ``a`` as a one-dimensional contiguous ndarray (view if possible)."""
    arr = np.asarray(a)
    if arr.ndim != 1:
        raise SizeError(f"{what} must be one-dimensional, got shape {arr.shape}")
    return np.ascontiguousarray(arr)


def as_index_array(
    a: npt.ArrayLike, what: str = "index array"
) -> np.ndarray:
    """Return ``a`` as a contiguous 1-D ``int64`` index array."""
    arr = as_1d(a, what)
    if not np.issubdtype(arr.dtype, np.integer):
        raise SizeError(f"{what} must have an integer dtype, got {arr.dtype}")
    return arr.astype(np.int64, copy=False)


def reshape_square(a: np.ndarray, what: str = "array") -> np.ndarray:
    """View a flat length-``n`` array as a ``sqrt(n) x sqrt(n)`` matrix.

    This is a zero-copy reshape; ``n`` must be a perfect square.
    """
    arr = as_1d(a, what)
    m = isqrt_exact(arr.shape[0], f"len({what})")
    return arr.reshape(m, m)


def smallest_index_dtype(max_value: int) -> np.dtype:
    """Return the smallest unsigned dtype able to hold ``max_value``.

    The paper stores its row-wise schedule arrays ``s`` and ``t`` as
    16-bit ``short int`` because row indices never exceed ``sqrt(n) <=
    2**16``; we mirror that choice so schedule memory footprints match.
    """
    if max_value < 0:
        raise SizeError(f"max_value must be non-negative, got {max_value}")
    for dtype in (np.uint8, np.uint16, np.uint32):
        if max_value <= np.iinfo(dtype).max:
            return np.dtype(dtype)
    return np.dtype(np.uint64)


def interleave(*arrays: np.ndarray) -> np.ndarray:
    """Interleave equal-length 1-D arrays element-wise.

    ``interleave(a, b)[2*i] == a[i]`` and ``interleave(a, b)[2*i+1] == b[i]``.
    Used by the pipeline tests to build mixed access streams.
    """
    if not arrays:
        return np.empty(0, dtype=np.int64)
    length = arrays[0].shape[0]
    for arr in arrays:
        if arr.shape != (length,):
            raise SizeError("interleave requires equal-length 1-D arrays")
    out = np.empty(length * len(arrays), dtype=np.result_type(*arrays))
    for offset, arr in enumerate(arrays):
        out[offset :: len(arrays)] = arr
    return out
