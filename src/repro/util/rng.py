"""Deterministic random-number plumbing.

Every randomised entry point in the package accepts a ``seed`` argument
that may be ``None`` (fresh entropy), an integer, or an existing
:class:`numpy.random.Generator`.  Centralising the resolution logic keeps
experiments reproducible: benchmarks always pass explicit integer seeds.
"""

from __future__ import annotations

import numpy as np

SeedLike = int | np.random.Generator | None


def resolve_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    * ``None``       -> fresh OS-entropy generator,
    * ``int``        -> ``np.random.default_rng(seed)``,
    * ``Generator``  -> returned unchanged (allows sharing streams).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
