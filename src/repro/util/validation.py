"""Structural validation helpers used across the package.

The scheduled permutation algorithm places structural requirements on its
inputs (permutations must be bijections, sizes must be perfect squares,
widths must divide the matrix side).  These helpers centralise the checks
so every public entry point reports consistent, early errors instead of
producing silently-wrong schedules.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import NotAPermutationError, SizeError


def is_power_of_two(value: int) -> bool:
    """Return ``True`` if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def check_power_of_two(value: int, what: str = "value") -> int:
    """Validate that ``value`` is a positive power of two and return it."""
    if not is_power_of_two(int(value)):
        raise SizeError(f"{what} must be a positive power of two, got {value}")
    return int(value)


def isqrt_exact(n: int, what: str = "n") -> int:
    """Return ``sqrt(n)`` when ``n`` is a perfect square, else raise.

    The scheduled algorithm views the length-``n`` array as a
    ``sqrt(n) x sqrt(n)`` matrix, so ``n`` must be a perfect square.
    """
    if n < 0:
        raise SizeError(f"{what} must be non-negative, got {n}")
    root = math.isqrt(int(n))
    if root * root != n:
        raise SizeError(f"{what} must be a perfect square, got {n}")
    return root


def check_square(n: int, width: int, what: str = "n") -> int:
    """Validate the scheduled-permutation size constraint.

    ``n`` must be a perfect square and ``sqrt(n)`` must be a multiple of
    the machine width ``w`` (the paper assumes both; its experiments use
    powers of two, but the algorithm only needs divisibility).

    Returns ``sqrt(n)``.
    """
    root = isqrt_exact(n, what)
    if width <= 0:
        raise SizeError(f"width must be positive, got {width}")
    if root % width != 0:
        raise SizeError(
            f"sqrt({what}) = {root} must be a multiple of the width {width}"
        )
    return root


def is_permutation(p: np.ndarray) -> bool:
    """Return ``True`` iff ``p`` is a permutation of ``0..len(p)-1``.

    Runs in O(n) time and O(n) extra space using a presence bitmap; this
    is considerably faster than sorting for the multi-million element
    permutations used in the benchmarks.
    """
    p = np.asarray(p)
    if p.ndim != 1:
        return False
    n = p.shape[0]
    if n == 0:
        return True
    if not np.issubdtype(p.dtype, np.integer):
        return False
    if p.min() < 0 or p.max() >= n:
        return False
    seen = np.zeros(n, dtype=bool)
    seen[p] = True
    return bool(seen.all())


def check_permutation(p: np.ndarray, what: str = "p") -> np.ndarray:
    """Validate that ``p`` is a permutation and return it as ``int64``.

    Raises :class:`~repro.errors.NotAPermutationError` otherwise.
    """
    arr = np.asarray(p)
    if arr.ndim != 1:
        raise NotAPermutationError(
            f"{what} must be one-dimensional, got shape {arr.shape}"
        )
    if not np.issubdtype(arr.dtype, np.integer):
        raise NotAPermutationError(
            f"{what} must have an integer dtype, got {arr.dtype}"
        )
    if not is_permutation(arr):
        raise NotAPermutationError(f"{what} is not a permutation of 0..{arr.size - 1}")
    return arr.astype(np.int64, copy=False)
