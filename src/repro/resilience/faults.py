"""Deterministic fault injection.

Real deployments of an offline-planned permutation service see three
families of failure, and this module can manufacture all of them, on
demand and reproducibly:

* **plan-file corruption** — :meth:`FaultPlan.corrupt_plan_file`
  damages a saved ``.npz`` plan in one of four ways (single bit flip,
  truncation, payload-key deletion, stale format version), seeded so
  the same :class:`FaultPlan` always produces the same damage;
* **transient planning faults** — while a :class:`FaultPlan` is
  *active* (used as a context manager), the first ``N`` colouring
  calls raise :class:`~repro.errors.ColoringError`, modelling flaky
  solvers / OOM-killed workers during offline planning;
* **capacity walls** — any colouring of a multigraph whose degree
  reaches ``capacity_threshold`` raises
  :class:`~repro.errors.SharedMemoryCapacityError`.  The global
  three-step decomposition colours a degree-``sqrt(n)`` multigraph, so
  this reproduces the paper's 48 KB shared-memory wall (Table II(b):
  ``sqrt(n) = 4096`` doubles are infeasible) at any chosen ``sqrt(n)``;
* **scatter collisions** — while active, the first
  ``scatter_collisions`` shared-memory scatters have one lane's
  address overwritten with lane 0's, manufacturing a genuine
  write-write race (the payload is corrupted, the round gains a bank
  conflict).  This is the workload the race detector
  (:func:`repro.staticcheck.detect_races`, ``HMM(...,
  detect_races=True)``) and the certifier's differential tests exist
  to catch.

Production paths pay nothing for this machinery: the colouring modules
consult a module-level hook that is ``None`` unless a plan is active,
and activation is strictly scoped by the context manager.

>>> from repro.resilience import FaultPlan
>>> plan = FaultPlan(seed=7, transient_coloring_failures=1)
>>> with plan:
...     pass  # first colouring in here would raise ColoringError
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.coloring import euler as _euler
from repro.coloring import matching as _matching
from repro.errors import (
    ColoringError,
    FaultInjectionError,
    SharedMemoryCapacityError,
)
from repro.machine import memory as _memory

#: The four supported plan-file fault modes.
FILE_FAULT_MODES = ("bit-flip", "truncate", "delete-key", "stale-version")

#: Version-2 payload keys eligible for bit flips / deletion
#: (format_version is excluded so every mode maps to exactly one error
#: class).  Version-3 files derive their candidates from the generic
#: ``op{i}.*`` key groups instead — see :func:`_corruptible_keys`.
_CORRUPTIBLE_KEYS = (
    "p", "colors", "gamma1", "delta", "gamma3",
    "s1", "t1", "s2", "t2", "s3", "t3",
)

#: Keys never corrupted in v3 files: metadata (so every mode maps to
#: one error class) plus format_version (that is the stale-version
#: mode's job).
_V3_PROTECTED_KEYS = frozenset(
    ("format_version", "checksum", "library_version", "certificate")
)

#: Keys never corrupted in sealed sidecar files: the metadata that
#: binds the artifact (checksum / provenance) plus sealed_version.
_SEALED_PROTECTED_KEYS = frozenset(
    ("sealed_version", "checksum", "library_version",
     "semantic_certificate", "plan_sha", "fingerprint", "pipeline")
)


def _corruptible_keys(arrays: dict) -> list[str]:
    """Numeric payload keys eligible for bit flips / deletion.

    Version-2 files use the fixed scheduled-plan key list; version-3
    files (generic kernel programs) take every non-metadata numeric
    array with at least one byte of payload, sorted for determinism.
    """
    if "sealed_version" in arrays:
        protected = _SEALED_PROTECTED_KEYS
    else:
        protected = _V3_PROTECTED_KEYS
        if int(arrays.get("format_version", 0)) < 3:
            return [k for k in _CORRUPTIBLE_KEYS if k in arrays]
    return sorted(
        k for k, arr in arrays.items()
        if k not in protected
        and np.asarray(arr).dtype.kind in "iufb"
        and np.asarray(arr).size > 0
    )

#: The currently active plan (at most one; nesting is an error).
_active: "FaultPlan | None" = None


@dataclass(frozen=True)
class InjectedFileFault:
    """What :meth:`FaultPlan.corrupt_plan_file` actually did."""

    mode: str
    path: str
    key: str | None = None      #: array key flipped/deleted, if any
    detail: str = ""


class FaultPlan:
    """A seeded, deterministic recipe of faults to inject.

    Parameters
    ----------
    seed:
        Drives every random choice (which key, which bit, how much to
        truncate).  Same seed, same faults.
    transient_coloring_failures:
        How many colouring calls fail with
        :class:`~repro.errors.ColoringError` while the plan is active.
        Counters reset on every activation, so one plan can be reused
        across runs.
    coloring_sites:
        Restrict transient failures to the named hook sites
        (``"euler"``, ``"matching"``); ``None`` hits all of them.
    capacity_threshold:
        When set, any colouring of a multigraph with ``degree >=
        capacity_threshold`` raises
        :class:`~repro.errors.SharedMemoryCapacityError` — a
        *persistent* fault (no retry can help), unlike the transient
        counter.  Degree equals ``sqrt(n)`` for the global colouring.
    scatter_collisions:
        How many shared-memory scatters get a write-write collision
        injected while the plan is active (one duplicated address per
        scatter, in a seeded block/lane).  Counter resets on every
        activation.
    """

    def __init__(
        self,
        seed: int = 0,
        transient_coloring_failures: int = 0,
        coloring_sites: tuple[str, ...] | None = None,
        capacity_threshold: int | None = None,
        scatter_collisions: int = 0,
    ) -> None:
        if transient_coloring_failures < 0:
            raise FaultInjectionError(
                "transient_coloring_failures must be >= 0, got "
                f"{transient_coloring_failures}"
            )
        if scatter_collisions < 0:
            raise FaultInjectionError(
                f"scatter_collisions must be >= 0, got "
                f"{scatter_collisions}"
            )
        self.seed = int(seed)
        self.transient_coloring_failures = int(transient_coloring_failures)
        self.coloring_sites = (
            tuple(coloring_sites) if coloring_sites is not None else None
        )
        self.capacity_threshold = capacity_threshold
        self.scatter_collisions = int(scatter_collisions)
        self._remaining = 0
        self._scatter_remaining = 0
        self._scatter_count = 0   # per-activation, drives determinism
        self._corruptions = 0   # per-plan counter -> distinct determinism

    # ------------------------------------------------------------------
    # Activation (transient + capacity faults)
    # ------------------------------------------------------------------

    def __enter__(self) -> "FaultPlan":
        global _active
        if _active is not None:
            raise FaultInjectionError(
                "a FaultPlan is already active; fault injection does "
                "not nest"
            )
        _active = self
        self._remaining = self.transient_coloring_failures
        self._scatter_remaining = self.scatter_collisions
        self._scatter_count = 0
        _euler._fault_hook = self._hook
        _matching._fault_hook = self._hook
        if self.scatter_collisions:
            _memory._scatter_fault_hook = self._scatter_hook
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _active
        _euler._fault_hook = None
        _matching._fault_hook = None
        _memory._scatter_fault_hook = None
        _active = None

    def _hook(self, site: str, graph) -> None:
        """Called by the colouring backends before any real work."""
        if (
            self.capacity_threshold is not None
            and graph.degree >= self.capacity_threshold
        ):
            raise SharedMemoryCapacityError(
                f"[injected] colouring degree {graph.degree} >= "
                f"capacity threshold {self.capacity_threshold} "
                "(simulated shared-memory wall)"
            )
        if self._remaining > 0 and (
            self.coloring_sites is None or site in self.coloring_sites
        ):
            self._remaining -= 1
            raise ColoringError(
                f"[injected] transient colouring fault at site "
                f"{site!r} ({self._remaining} more to come)"
            )

    def _scatter_hook(
        self, array: str, addresses: np.ndarray
    ) -> np.ndarray:
        """Called by :meth:`TracedSharedArray.scatter` with the
        ``(blocks, threads)`` address matrix; returns what the write
        actually uses."""
        del array  # all shared arrays are fair game
        self._scatter_count += 1
        if self._scatter_remaining <= 0 or addresses.shape[1] < 2:
            return addresses
        self._scatter_remaining -= 1
        rng = np.random.default_rng([self.seed, self._scatter_count])
        block = int(rng.integers(addresses.shape[0]))
        lane = int(rng.integers(1, addresses.shape[1]))
        corrupted = addresses.copy()
        corrupted[block, lane] = corrupted[block, 0]
        return corrupted

    # ------------------------------------------------------------------
    # Plan-file corruption
    # ------------------------------------------------------------------

    def corrupt_plan_file(self, path, mode: str) -> InjectedFileFault:
        """Damage the plan file at ``path`` in place.

        ``mode`` is one of :data:`FILE_FAULT_MODES`.  Deterministic:
        the damage depends only on ``seed``, the number of previous
        corruptions by this plan, and the file content.
        """
        path = Path(path)
        if mode not in FILE_FAULT_MODES:
            raise FaultInjectionError(
                f"unknown fault mode {mode!r}; expected one of "
                f"{FILE_FAULT_MODES}"
            )
        rng = np.random.default_rng([self.seed, self._corruptions])
        self._corruptions += 1
        if mode == "truncate":
            raw = path.read_bytes()
            keep = max(1, int(len(raw) * rng.uniform(0.2, 0.8)))
            path.write_bytes(raw[:keep])
            return InjectedFileFault(
                mode=mode, path=str(path),
                detail=f"kept {keep} of {len(raw)} bytes",
            )
        with np.load(path) as data:
            arrays = {k: np.asarray(data[k]) for k in data.files}
        if mode == "bit-flip":
            candidates = _corruptible_keys(arrays)
            if not candidates:
                raise FaultInjectionError(
                    f"{path}: no corruptible payload keys found"
                )
            key = candidates[int(rng.integers(len(candidates)))]
            arr = arrays[key]
            buf = bytearray(arr.tobytes())
            bit = int(rng.integers(8 * len(buf)))
            buf[bit // 8] ^= 1 << (bit % 8)
            arrays[key] = np.frombuffer(
                bytes(buf), dtype=arr.dtype
            ).reshape(arr.shape)
            detail = f"flipped bit {bit}"
        elif mode == "delete-key":
            candidates = _corruptible_keys(arrays)
            if not candidates:
                raise FaultInjectionError(
                    f"{path}: no deletable payload keys found"
                )
            key = candidates[int(rng.integers(len(candidates)))]
            del arrays[key]
            detail = "deleted"
        else:   # stale-version
            key = "format_version"
            arrays[key] = np.int64(1)
            detail = "rewound format_version to 1"
        np.savez_compressed(path, **arrays)
        return InjectedFileFault(mode=mode, path=str(path), key=key,
                                 detail=detail)


def active_fault_plan() -> FaultPlan | None:
    """The currently active :class:`FaultPlan`, if any (for tests)."""
    return _active
