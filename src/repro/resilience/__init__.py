"""Resilience layer: fault injection, verified plans, degradation.

The paper's offline algorithm plans *once* and is then trusted
forever — so this reproduction carries the machinery that trust
requires in production:

* :class:`FaultPlan` (:mod:`repro.resilience.faults`) — seedable,
  deterministic fault injection: corrupt saved plan files, force
  transient colouring failures, simulate shared-memory capacity walls;
* checksummed plan files (:mod:`repro.core.io`) — every ``.npz`` plan
  carries a SHA-256 checksum and version stamps, verified on load;
* :class:`ResilientPermutation` (:mod:`repro.resilience.engine`) — a
  fallback chain ``scheduled -> padded -> conventional`` with bounded
  deterministic retry, guaranteed to never return a wrong answer;
* :class:`FailureReport` (:mod:`repro.resilience.reporting`) — a
  structured account of every failure the chain absorbed.

See ``docs/robustness.md`` for the full story, and
``python -m repro resilience-demo`` for a live tour.
"""

from repro.resilience.engine import (
    DEFAULT_CHAIN,
    TRANSIENT_ERRORS,
    ResilientPermutation,
    backoff_delay,
)
from repro.resilience.faults import (
    FILE_FAULT_MODES,
    FaultPlan,
    InjectedFileFault,
    active_fault_plan,
)
from repro.resilience.reporting import FailureRecord, FailureReport

__all__ = [
    "DEFAULT_CHAIN",
    "FILE_FAULT_MODES",
    "FailureRecord",
    "FailureReport",
    "FaultPlan",
    "InjectedFileFault",
    "ResilientPermutation",
    "TRANSIENT_ERRORS",
    "active_fault_plan",
    "backoff_delay",
]
