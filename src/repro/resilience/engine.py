"""Graceful degradation: a permutation that never answers wrong.

:class:`ResilientPermutation` wraps the engine registry
(:func:`repro.core.selector.build_engine`) with a declared fallback
chain — by default

    scheduled  ->  padded  ->  d-designated (conventional)

and the guarantee that *some* engine produces ``b[p[i]] = a[i]`` or a
:class:`~repro.errors.FallbackExhaustedError` is raised; a wrong answer
is never returned silently.  The chain is ordered by model speed: the
paper's optimal scheduled algorithm first, its any-``n`` padded variant
second, and the conventional scatter — three casual-round cost, but
planning-free and unconditionally correct — as the last resort.

Failure handling distinguishes two classes:

* **transient** planning faults (:class:`~repro.errors.ColoringError`,
  :class:`~repro.errors.SchedulingError`) — e.g. a flaky colouring
  worker — are retried on the *same* engine up to ``max_attempts``
  times with deterministic exponential backoff;
* **persistent** faults (:class:`~repro.errors.SizeError`: the size is
  simply infeasible; :class:`~repro.errors.SharedMemoryCapacityError`:
  the machine cannot fit the tile) skip straight to the next engine —
  retrying cannot help.

Every absorbed failure lands in a structured
:class:`~repro.resilience.reporting.FailureReport`.
"""

from __future__ import annotations

import time

import numpy as np

from repro import telemetry
from repro.core.io import load_plan
from repro.core.selector import build_engine
from repro.errors import (
    ColoringError,
    FallbackExhaustedError,
    PlanIntegrityError,
    ReproError,
    ResilienceError,
    SchedulingError,
)
from repro.machine.memory import TraceRecorder
from repro.resilience.reporting import FailureReport
from repro.util.validation import check_permutation

#: Default engine order: fastest on the model first, unconditionally
#: plannable last.
DEFAULT_CHAIN = ("scheduled", "padded", "d-designated")

#: Errors worth retrying on the same engine.
TRANSIENT_ERRORS = (ColoringError, SchedulingError)


def backoff_delay(attempt: int, base: float = 0.05) -> float:
    """Deterministic exponential backoff: ``base * 2**(attempt-1)``.

    No jitter on purpose — reproducibility is worth more than herd
    avoidance in an offline planner, and tests pin the exact schedule.
    """
    return base * (2 ** (attempt - 1))


class ResilientPermutation:
    """Plan ``p`` through a fallback chain of engines.

    Parameters
    ----------
    p:
        The permutation to realise (``b[p[i]] = a[i]``).
    width:
        Machine width ``w`` for the scheduled engines.
    backend:
        Colouring backend forwarded to planning.
    chain:
        Engine names to try, in order (default :data:`DEFAULT_CHAIN`).
    max_attempts:
        Per-engine attempt budget for transient faults.
    backoff_base:
        Base of the deterministic backoff schedule (seconds).
    sleep:
        Injectable sleeper (defaults to :func:`time.sleep`); tests pass
        a recorder to pin the schedule without waiting.
    self_check:
        When ``True`` (the default — paranoia is this class's job),
        every :meth:`apply` output is verified against a direct O(n)
        scatter before being returned.
    planner:
        Optional :class:`~repro.planner.Planner`.  When given, every
        engine attempt resolves through the plan cache, and the whole
        chain reuses one permutation digest computed up front — a
        fallback hop costs a fingerprint lookup, not a re-hash of the
        array (and, on a warm cache, not a re-plan either).
    """

    def __init__(
        self,
        p: np.ndarray,
        width: int = 32,
        backend: str = "auto",
        chain: tuple[str, ...] = DEFAULT_CHAIN,
        max_attempts: int = 3,
        backoff_base: float = 0.05,
        sleep=None,
        self_check: bool = True,
        planner=None,
        _preload_failure: BaseException | None = None,
    ) -> None:
        if max_attempts < 1:
            raise ResilienceError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        if not chain:
            raise ResilienceError("fallback chain must not be empty")
        self.p = check_permutation(p)
        self.width = width
        self.self_check = self_check
        self._sleep = sleep if sleep is not None else time.sleep
        self._planner = planner
        self._digest: str | None = None
        if planner is not None:
            from repro.planner import permutation_digest

            self._digest = permutation_digest(self.p)
        self.report = FailureReport(chain=tuple(chain))
        # A private tracer records every attempt/backoff span so the
        # FailureReport embeds the telemetry even when no process-wide
        # tracer is active; the same spans/counters are mirrored to the
        # global tracer (prefixed ``resilience.``) when one is.
        self._tracer = telemetry.Tracer()
        if _preload_failure is not None:
            self.report.record("load", "plan-file", 1, _preload_failure,
                               retried=False)
            self._count("plan_file_rejected")
        self.engine = None
        self.choice: str | None = None
        self._plan_chain(backend, chain, max_attempts, backoff_base)

    @classmethod
    def _from_engine(cls, p, width, engine, choice,
                     self_check=True) -> "ResilientPermutation":
        inst = cls.__new__(cls)
        inst.p = check_permutation(p)
        inst.width = width
        inst.self_check = self_check
        inst._sleep = time.sleep
        inst._planner = None
        inst._digest = None
        inst.report = FailureReport(chain=(choice,), engine_used=choice)
        inst.engine = engine
        inst.choice = choice
        return inst

    @classmethod
    def from_plan_file(
        cls, path, p: np.ndarray | None = None, **kwargs
    ) -> "ResilientPermutation":
        """Load a saved plan, degrading to re-planning when it is bad.

        With only ``path``, a corrupt/stale plan file raises the
        precise :class:`~repro.errors.PlanIntegrityError`.  When the
        original permutation ``p`` is also given, the failure is
        absorbed instead: it is recorded in the report (stage
        ``"load"``) and the permutation is re-planned from scratch
        through the normal fallback chain.
        """
        try:
            plan = load_plan(path)
        except PlanIntegrityError as exc:
            if p is None:
                raise
            return cls(p, _preload_failure=exc, **kwargs)
        choice = getattr(type(plan), "engine_name", "") or "scheduled"
        return cls._from_engine(
            plan.p, getattr(plan, "width", 32), plan, choice,
            self_check=kwargs.get("self_check", True),
        )

    # ------------------------------------------------------------------
    # Planning with retry + fallback
    # ------------------------------------------------------------------

    def _count(self, name: str, n: float = 1) -> None:
        """Count on the private tracer and mirror to the global one."""
        self._tracer.count(f"resilience.{name}", n)
        telemetry.count(f"resilience.{name}", n)

    def _plan_chain(self, backend, chain, max_attempts, backoff_base):
        try:
            for name in chain:
                if self._plan_engine(name, backend, max_attempts,
                                     backoff_base):
                    return
            self._count("chain_exhausted")
            raise FallbackExhaustedError(
                f"all engines failed for n = {len(self.p)} "
                f"(chain {' -> '.join(chain)}); see report:\n"
                + self.report.summary(),
                report=self.report,
            )
        finally:
            # Embed the telemetry of the whole planning run (spans for
            # every attempt and backoff, plus counters) in the report.
            self.report.spans = list(self._tracer.spans)
            self.report.counters = dict(self._tracer.counters)

    def _plan_engine(self, name, backend, max_attempts,
                     backoff_base) -> bool:
        for attempt in range(1, max_attempts + 1):
            with self._tracer.span(f"plan.{name}", attempt=attempt) as sp, \
                    telemetry.span(f"resilience.plan.{name}",
                                   attempt=attempt) as gsp:
                outcome = self._attempt(name, backend, attempt,
                                        max_attempts)
                sp.set(outcome=outcome)
                gsp.set(outcome=outcome)
            if outcome == "ok":
                return True
            if outcome == "persistent-fault":
                self._count("fallbacks")
                return False
            # Transient: back off (its own span) and try again.
            if attempt < max_attempts:
                self._count("retries")
                delay = backoff_delay(attempt, backoff_base)
                with self._tracer.span("backoff", seconds=delay), \
                        telemetry.span("resilience.backoff",
                                       seconds=delay):
                    self._sleep(delay)
        self._count("fallbacks")
        return False

    def _attempt(self, name, backend, attempt, max_attempts) -> str:
        """One planning attempt; returns the outcome label."""
        try:
            if self._planner is not None:
                # Cache-aware hop: the digest computed at construction
                # is reused for every engine in the chain.
                self.engine = self._planner.compile(
                    self.p, engine=name, width=self.width,
                    digest=self._digest, backend=backend,
                )
            else:
                self.engine = build_engine(
                    name, self.p, width=self.width, backend=backend
                )
        except TRANSIENT_ERRORS as exc:
            retried = attempt < max_attempts
            self.report.record("plan", name, attempt, exc, retried)
            self._count("faults_absorbed")
            return "transient-fault"
        except ReproError as exc:
            # Persistent: infeasible size, capacity wall, ... — no
            # amount of retrying will change the answer.
            self.report.record("plan", name, attempt, exc,
                               retried=False)
            self._count("faults_absorbed")
            return "persistent-fault"
        self.choice = name
        self.report.engine_used = name
        return "ok"

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        return self.report.degraded

    def apply(
        self, a: np.ndarray, recorder: TraceRecorder | None = None
    ) -> np.ndarray:
        """Permute ``a``; optionally (default) verify the output.

        The self-check compares against the definitionally correct
        scatter ``expected[p] = a`` — one extra O(n) pass, the price of
        the never-wrong guarantee.
        """
        out = self.engine.apply(a, recorder)
        if self.self_check:
            a = np.asarray(a)
            expected = np.empty_like(a)
            expected[self.p] = a
            if not np.array_equal(out, expected):
                raise ResilienceError(
                    f"engine {self.choice!r} produced an incorrect "
                    "permutation (caught by the resilience self-check)"
                )
        return out

    def apply_batch(self, batch: np.ndarray) -> np.ndarray:
        """Permute ``k`` stacked arrays with the settled engine; each
        row is self-checked like a single :meth:`apply` output."""
        out = self.engine.apply_batch(batch)
        if self.self_check:
            mats = np.asarray(batch)
            expected = np.empty_like(mats)
            expected[:, self.p] = mats
            if not np.array_equal(out, expected):
                raise ResilienceError(
                    f"engine {self.choice!r} produced an incorrect "
                    "batch permutation (caught by the resilience "
                    "self-check)"
                )
        return out

    def lower(self):
        """The settled engine's kernel program."""
        return self.engine.lower()

    def simulate(self, machine=None, dtype=np.float32):
        """Model cost of whichever engine the chain settled on."""
        return self.engine.simulate(machine, dtype=dtype)
