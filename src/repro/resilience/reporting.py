"""Structured failure reporting for the resilience layer.

Every failure the fallback chain absorbs — a corrupt plan file, a
transient colouring error, a capacity wall — is recorded as a
:class:`FailureRecord` and collected into a :class:`FailureReport`, so
"the permutation succeeded" never hides *how* it succeeded.  The report
renders to a compact human-readable block used by
``python -m repro resilience-demo`` and the smoke report.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class FailureRecord:
    """One absorbed failure.

    Attributes
    ----------
    stage:
        Where in the lifecycle it struck: ``"load"`` (plan file),
        ``"plan"`` (offline planning) or ``"apply"`` (execution).
    engine:
        Engine name being attempted (``"scheduled"``, ``"padded"``,
        ``"d-designated"``, ...) or ``"plan-file"`` for load failures.
    attempt:
        1-based attempt number within that engine.
    error:
        The exception, preserved with its full chain.
    retried:
        ``True`` when the same engine was tried again (transient
        fault), ``False`` when the chain moved on to the next engine.
    """

    stage: str
    engine: str
    attempt: int
    error: BaseException
    retried: bool

    def describe(self) -> str:
        action = "retried" if self.retried else "fell back"
        chain = _chain_of(self.error)
        return (f"{self.stage}/{self.engine} attempt {self.attempt}: "
                f"{chain} -> {action}")


def _chain_of(error: BaseException) -> str:
    """Render an exception and its ``__cause__`` chain on one line."""
    parts = []
    seen: set[int] = set()
    current: BaseException | None = error
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        parts.append(f"{type(current).__name__}: {current}")
        current = current.__cause__
    return " <- ".join(parts)


@dataclass
class FailureReport:
    """Everything that went wrong (and was absorbed) in one run.

    Beyond the failure records, the report embeds the telemetry of the
    planning run: ``spans`` is the finished
    :class:`~repro.telemetry.tracer.Span` tree of every engine attempt
    and backoff (wall-clock, with ``outcome`` attributes) and
    ``counters`` the matching totals (``resilience.retries``,
    ``resilience.fallbacks``, ...) — so a degraded run shows not just
    *what* failed but *where the time went* while absorbing it.
    """

    records: list[FailureRecord] = field(default_factory=list)
    engine_used: str | None = None
    chain: tuple[str, ...] = ()
    spans: list = field(default_factory=list)
    counters: dict = field(default_factory=dict)

    def record(
        self,
        stage: str,
        engine: str,
        attempt: int,
        error: BaseException,
        retried: bool,
    ) -> None:
        self.records.append(
            FailureRecord(stage=stage, engine=engine, attempt=attempt,
                          error=error, retried=retried)
        )

    @property
    def degraded(self) -> bool:
        """True when the result did not come from the chain's first
        engine at first attempt."""
        return bool(self.records)

    @property
    def attempts_total(self) -> int:
        """Failed attempts plus the final (successful or not) one."""
        return len(self.records) + (1 if self.engine_used else 0)

    def engines_failed(self) -> list[str]:
        """Engines abandoned for a later link of the chain, in order."""
        out: list[str] = []
        for rec in self.records:
            if not rec.retried and rec.engine not in out:
                out.append(rec.engine)
        return out

    def summary(self) -> str:
        """Multi-line human-readable account of the run."""
        lines = [
            f"fallback chain: {' -> '.join(self.chain) or '(empty)'}",
            f"engine used:    {self.engine_used or 'NONE (exhausted)'}",
            f"degraded:       {self.degraded} "
            f"({len(self.records)} absorbed failure(s))",
        ]
        for rec in self.records:
            lines.append(f"  - {rec.describe()}")
        if self.spans:
            lines.append("spans:")
            for span in sorted(self.spans,
                               key=lambda s: (s.start_ns, s.span_id)):
                attrs = span.attributes
                detail = " ".join(
                    f"{key}={attrs[key]}"
                    for key in ("attempt", "outcome", "seconds")
                    if key in attrs
                )
                lines.append(
                    f"  - {span.name:<20} {span.duration_ms:8.3f} ms"
                    f"{('  ' + detail) if detail else ''}"
                )
        if self.counters:
            lines.append("counters:")
            for name in sorted(self.counters):
                lines.append(f"  - {name} = {self.counters[name]:g}")
        return "\n".join(lines)
